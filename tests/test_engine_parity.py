"""Per-ray parity of the scalar and wavefront predictor simulations.

The vectorized wavefront pipeline replays the scalar reference's probe
semantics with batched kernels; the contract (and the acceptance bar for
making it the default engine) is that per-ray *occlusion* is
bit-identical across engines on every benchmark scene.  Aggregate
predicted/verified counts may differ slightly - the scalar engine
interleaves confirms within a window - but what each ray reports back to
the renderer may not.
"""

import numpy as np
import pytest

from repro.bvh import build_bvh
from repro.core.simulate import simulate_baseline, simulate_predictor
from repro.rays import generate_ao_workload
from repro.scenes import SCENE_CODES, get_scene

#: Small shapes: parity must hold at any size, so test the cheap one.
DETAIL = 0.3
RAYS = 192
IN_FLIGHT = 16


def _scene_rays(code):
    scene = get_scene(code, detail=DETAIL)
    bvh = build_bvh(scene.mesh, method="sah")
    workload = generate_ao_workload(
        scene, bvh, width=16, height=16, spp=2, seed=1
    )
    rays = workload.rays.subset(np.arange(min(RAYS, len(workload.rays))))
    return bvh, rays


@pytest.mark.parametrize("code", SCENE_CODES)
def test_per_ray_occlusion_identical_across_engines(code):
    bvh, rays = _scene_rays(code)
    scalar = simulate_predictor(
        bvh, rays, in_flight=IN_FLIGHT, engine="scalar", keep_outcomes=True
    )
    wave = simulate_predictor(
        bvh, rays, in_flight=IN_FLIGHT, engine="wavefront", keep_outcomes=True
    )
    scalar_hits = np.array([o.hit for o in scalar.outcomes])
    wave_hits = np.array([o.hit for o in wave.outcomes])
    assert np.array_equal(scalar_hits, wave_hits), (
        f"{code}: engines disagree on "
        f"{int((scalar_hits != wave_hits).sum())} ray(s)"
    )
    # Both engines also agree with the no-predictor ground truth.
    base = simulate_baseline(bvh, rays, engine="wavefront")
    assert scalar.hits == wave.hits == base.hits


@pytest.mark.parametrize("code", ("SB", "CK"))
def test_baseline_agrees_on_occlusion_across_engines(code):
    # Fetch *counters* are order-dependent and differ between engines
    # by design (different early-exit order); what must agree is the
    # occlusion answer, and each engine's counters must be self-
    # consistent with its memoized baseline record.
    from repro.core.baseline import baseline_record

    bvh, rays = _scene_rays(code)
    scalar = simulate_baseline(bvh, rays, engine="scalar")
    wave = simulate_baseline(bvh, rays, engine="wavefront")
    assert scalar.hits == wave.hits
    record = baseline_record(bvh, rays, "wavefront")
    assert wave.baseline_node_fetches == int(record.node_fetches.sum())
    assert wave.baseline_tri_fetches == int(record.tri_fetches.sum())
