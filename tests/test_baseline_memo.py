"""Memoized baseline traversal records (repro.core.baseline)."""

import numpy as np
import pytest

from repro.core.baseline import (
    CACHE_CAPACITY,
    BaselineRecord,
    baseline_cache_info,
    baseline_record,
    clear_baseline_cache,
)
from repro.trace import trace_occlusion_batch


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_baseline_cache()
    yield
    clear_baseline_cache()


class TestWavefrontRecord:
    def test_eager_compute_is_complete_and_correct(self, small_bvh, small_workload):
        rays = small_workload.rays
        record = baseline_record(small_bvh, rays, "wavefront")
        assert record.complete()
        # The record's occlusion agrees with the public tracer.
        occluded = trace_occlusion_batch(small_bvh, rays, engine="wavefront")
        assert np.array_equal(record.hit_tri >= 0, occluded)
        assert record.node_fetches.sum() > 0

    def test_second_call_hits_same_record(self, small_bvh, small_workload):
        rays = small_workload.rays
        first = baseline_record(small_bvh, rays, "wavefront")
        second = baseline_record(small_bvh, rays, "wavefront")
        assert second is first
        assert first.hits == 1

    def test_rebuilt_rays_with_equal_content_hit(self, small_bvh, small_workload):
        # Sweeps rebuild RayBatch views freely; content keys the record.
        rays = small_workload.rays
        first = baseline_record(small_bvh, rays, "wavefront")
        view = rays.subset(np.arange(len(rays)))
        assert baseline_record(small_bvh, view, "wavefront") is first

    def test_subset_rays_get_their_own_record(self, small_bvh, small_workload):
        rays = small_workload.rays
        whole = baseline_record(small_bvh, rays, "wavefront")
        half = rays.subset(np.arange(len(rays) // 2))
        partial = baseline_record(small_bvh, half, "wavefront")
        assert partial is not whole
        # Per-ray independence: the prefix of the whole-stream record
        # equals the standalone half-stream record.
        n = len(half)
        assert np.array_equal(partial.hit_tri, whole.hit_tri[:n])
        assert np.array_equal(partial.node_fetches, whole.node_fetches[:n])

    def test_engines_never_share_records(self, small_bvh, small_workload):
        rays = small_workload.rays
        wave = baseline_record(small_bvh, rays, "wavefront")
        scalar = baseline_record(small_bvh, rays, "scalar", compute=False)
        assert scalar is not wave
        assert not scalar.complete()


class TestScalarLazyFill:
    def test_record_fills_incrementally(self, small_bvh, small_workload):
        rays = small_workload.rays
        record = baseline_record(small_bvh, rays, "scalar", compute=False)
        record.record(0, 7, 11, 3)
        assert record.known[0] and not record.known[1:].any()
        assert record.hit_tri[0] == 7
        assert not record.complete()

    def test_known_rays_keep_first_value(self, small_bvh, small_workload):
        record = baseline_record(
            small_bvh, small_workload.rays, "scalar", compute=False
        )
        record.record(3, 5, 10, 2)
        record.record(3, 99, 999, 99)  # deterministic traversal: ignored
        assert record.hit_tri[3] == 5
        assert record.node_fetches[3] == 10

    def test_vector_fill_skips_known(self):
        record = BaselineRecord.empty(4)
        record.record(1, 8, 2, 1)
        record.record(
            np.array([0, 1, 2]),
            np.array([10, 20, 30]),
            np.array([1, 2, 3]),
            np.array([4, 5, 6]),
        )
        assert np.array_equal(record.hit_tri[:3], [10, 8, 30])
        assert record.complete() is False  # ray 3 still unknown


class TestCachePolicy:
    def test_identity_keyed_bvh(self, small_scene, small_bvh, small_workload):
        from repro.bvh import build_bvh

        rays = small_workload.rays
        first = baseline_record(small_bvh, rays, "wavefront")
        rebuilt_bvh = build_bvh(small_scene.mesh, method="sah")
        # Equal content, different identity: must not alias.
        assert baseline_record(rebuilt_bvh, rays, "wavefront") is not first

    def test_lru_eviction_at_capacity(self, small_bvh, small_workload):
        rays = small_workload.rays
        oldest = baseline_record(small_bvh, rays, "scalar", compute=False)
        for i in range(CACHE_CAPACITY):
            sub = rays.subset(np.arange(2 + i))
            baseline_record(small_bvh, sub, "scalar", compute=False)
        assert baseline_cache_info()["entries"] == CACHE_CAPACITY
        # The untouched first record was evicted; a fresh one comes back.
        assert baseline_record(
            small_bvh, rays, "scalar", compute=False
        ) is not oldest

    def test_clear_and_info(self, small_bvh, small_workload):
        baseline_record(small_bvh, small_workload.rays, "wavefront")
        assert baseline_cache_info()["entries"] == 1
        clear_baseline_cache()
        assert baseline_cache_info() == {
            "entries": 0, "capacity": CACHE_CAPACITY, "hits": 0,
        }
