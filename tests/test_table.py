"""Unit tests for the predictor table (Section 4.1)."""

import pytest

from repro.core.table import PredictorTable


def make(entries=64, ways=4, nodes=1, bits=15, policy="lru"):
    return PredictorTable(
        num_entries=entries, ways=ways, nodes_per_entry=nodes,
        hash_bits=bits, node_policy=policy,
    )


class TestBasics:
    def test_miss_returns_none(self):
        table = make()
        assert table.lookup(0x1234) is None
        assert table.stats.lookups == 1
        assert table.stats.hits == 0

    def test_update_then_hit(self):
        table = make()
        table.update(0x1234, 42)
        assert table.lookup(0x1234) == [42]
        assert table.stats.hit_rate == 1.0

    def test_different_hash_does_not_hit(self):
        table = make()
        table.update(0x1234, 42)
        assert table.lookup(0x4321) is None

    def test_same_index_different_tag_are_separate(self):
        # Two hashes that fold to the same set index but differ in tag.
        table = make(entries=16, ways=1, bits=15)
        # index_bits = 4; craft hashes with equal folded index.
        h1 = 0b000_0000_0000_0001
        h2 = h1 | (1 << 4) | 1  # changes tag, keeps... compute fold manually
        table.update(h1, 7)
        if table._index_and_tag(h1)[0] == table._index_and_tag(h2)[0]:
            assert table.lookup(h2) is None

    def test_update_same_entry_single_slot_replaces(self):
        table = make(nodes=1)
        table.update(5, 10)
        table.update(5, 20)
        assert table.lookup(5) == [20]
        assert table.stats.node_evictions == 1

    def test_multi_node_entry_accumulates(self):
        table = make(nodes=2)
        table.update(5, 10)
        table.update(5, 20)
        assert sorted(table.lookup(5)) == [10, 20]

    def test_clear(self):
        table = make()
        table.update(1, 2)
        table.clear()
        assert table.lookup(1) is None
        assert table.occupancy() == 0.0


class TestAssociativity:
    def test_set_eviction_lru(self):
        # Direct-mapped, 4 sets: force two tags into one set.
        table = make(entries=4, ways=1, bits=4)
        # With 2 index bits from folding a 4-bit tag: find colliding hashes.
        h1, h2 = None, None
        for a in range(16):
            for b in range(a + 1, 16):
                ia, ta = table._index_and_tag(a)
                ib, tb = table._index_and_tag(b)
                if ia == ib and ta != tb:
                    h1, h2 = a, b
                    break
            if h1 is not None:
                break
        assert h1 is not None
        table.update(h1, 100)
        table.update(h2, 200)  # evicts h1 in a direct-mapped set
        assert table.lookup(h1) is None
        assert table.lookup(h2) == [200]
        assert table.stats.entry_evictions == 1

    def test_higher_associativity_retains_both(self):
        table = make(entries=8, ways=2, bits=4)
        h1, h2 = None, None
        for a in range(16):
            for b in range(a + 1, 16):
                ia, ta = table._index_and_tag(a)
                ib, tb = table._index_and_tag(b)
                if ia == ib and ta != tb:
                    h1, h2 = a, b
                    break
            if h1 is not None:
                break
        table.update(h1, 100)
        table.update(h2, 200)
        assert table.lookup(h1) == [100]
        assert table.lookup(h2) == [200]

    def test_lookup_refreshes_entry_lru(self):
        table = make(entries=2, ways=2, bits=6)
        # Both entries land in the single set (2 entries / 2 ways = 1 set).
        table.update(1, 10)
        table.update(2, 20)
        table.lookup(1)  # refresh entry 1
        table.update(3, 30)  # evicts entry 2 (LRU)
        assert table.lookup(1) == [10]
        assert table.lookup(2) is None


class TestConfigValidation:
    def test_entries_divisible_by_ways(self):
        with pytest.raises(ValueError):
            PredictorTable(num_entries=10, ways=4)

    def test_sets_power_of_two(self):
        with pytest.raises(ValueError):
            PredictorTable(num_entries=12, ways=4)

    def test_positive(self):
        with pytest.raises(ValueError):
            PredictorTable(num_entries=0, ways=1)


class TestSizeAccounting:
    def test_paper_default_is_5_5kb(self):
        # 1024 entries x (1 valid + 15 tag + 27 node) bits = 5.375 KiB,
        # the "5.5 KB" the paper quotes.
        table = PredictorTable(num_entries=1024, ways=4, nodes_per_entry=1, hash_bits=15)
        assert table.size_bits() == 1024 * 43
        assert 5.3 < table.size_kib() < 5.5

    def test_size_scales_with_nodes(self):
        one = make(nodes=1).size_bits()
        two = make(nodes=2).size_bits()
        assert two > one


class TestConfirm:
    def test_confirm_touches_policy(self):
        table = make(nodes=2, policy="lfu")
        table.update(5, 10)
        table.update(5, 20)
        table.confirm(5, 10)
        table.confirm(5, 10)
        table.update(5, 30)  # should evict 20 (less frequently used)
        assert 10 in table.lookup(5)
        assert 20 not in table.lookup(5)

    def test_confirm_missing_entry_is_noop(self):
        table = make()
        table.confirm(99, 1)  # must not raise


class TestOccupancyAndIteration:
    def test_occupancy_grows(self):
        table = make(entries=16, ways=4, bits=10)
        assert table.occupancy() == 0.0
        for h in range(8):
            table.update(h * 37, h)
        assert 0.0 < table.occupancy() <= 0.5

    def test_iter_nodes(self):
        table = make()
        table.update(1, 11)
        table.update(2, 22)
        assert sorted(table.iter_nodes()) == [11, 22]
