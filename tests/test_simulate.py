"""Unit tests for the functional predictor simulation."""

import pytest

from repro.core import PredictorConfig, simulate_predictor
from repro.core.simulate import PredictionOutcome


CFG = PredictorConfig(origin_bits=3, direction_bits=2, go_up_level=2)


class TestSimulationBasics:
    @pytest.fixture(scope="class")
    def result(self, small_bvh, small_workload):
        return simulate_predictor(
            small_bvh, small_workload.rays, CFG, keep_outcomes=True
        )

    def test_ray_accounting(self, result, small_workload):
        assert result.num_rays == len(small_workload)
        assert 0 <= result.verified <= result.predicted <= result.num_rays
        assert result.verified <= result.hits

    def test_rates_consistent(self, result):
        assert result.predicted_rate == result.predicted / result.num_rays
        assert result.verified_rate == result.verified / result.num_rays
        assert 0.0 <= result.hit_rate <= 1.0

    def test_some_predictions_happen(self, result):
        # The workload has thousands of rays; the table must train.
        assert result.predicted > 0
        assert result.verified > 0

    def test_outcomes_consistent_with_totals(self, result):
        outcomes = result.outcomes
        assert len(outcomes) == result.num_rays
        assert sum(o.predicted for o in outcomes) == result.predicted
        assert sum(o.verified for o in outcomes) == result.verified
        assert sum(o.node_fetches for o in outcomes) == result.predictor_node_fetches

    def test_verified_rays_skip_full_traversal(self, result):
        for o in result.outcomes:
            if o.verified:
                assert o.full_node_fetches == 0
                assert o.full_tri_fetches == 0
                assert o.hit

    def test_mispredicted_pay_both(self, result):
        mispredicted = [o for o in result.outcomes if o.predicted and not o.verified]
        assert mispredicted, "expected some mispredictions"
        for o in mispredicted:
            assert o.verify_node_fetches + o.verify_tri_fetches > 0 or o.predicted_nodes
            # The recovery traversal ran (unless the ray misses everything
            # instantly, it fetches something).
        total_mis = sum(o.verify_node_fetches for o in mispredicted)
        assert result.misprediction_node_fetches == total_mis

    def test_unpredicted_have_no_verify_cost(self, result):
        for o in result.outcomes:
            if not o.predicted:
                assert o.verify_node_fetches == 0
                assert o.predicted_nodes == 0

    def test_baseline_counts_positive(self, result):
        assert result.baseline_node_fetches > 0
        assert result.baseline_accesses >= result.baseline_node_fetches

    def test_table_traffic(self, result):
        assert result.table_lookups == result.num_rays
        assert result.table_updates == result.hits


class TestConcurrencyWindow:
    def test_window_one_is_most_informed(self, small_bvh, small_workload):
        # Immediate updates (in_flight=1) can only help prediction.
        delayed = simulate_predictor(small_bvh, small_workload.rays, CFG, in_flight=256)
        immediate = simulate_predictor(small_bvh, small_workload.rays, CFG, in_flight=1)
        assert immediate.predicted >= delayed.predicted * 0.9

    def test_invalid_window_raises(self, small_bvh, small_workload):
        with pytest.raises(ValueError):
            simulate_predictor(small_bvh, small_workload.rays, CFG, in_flight=0)

    def test_deterministic(self, small_bvh, small_workload):
        a = simulate_predictor(small_bvh, small_workload.rays, CFG)
        b = simulate_predictor(small_bvh, small_workload.rays, CFG)
        assert a.predictor_node_fetches == b.predictor_node_fetches
        assert a.verified == b.verified


class TestSavingsMetrics:
    def test_memory_savings_definition(self, small_bvh, small_workload):
        result = simulate_predictor(small_bvh, small_workload.rays, CFG)
        expected = 1.0 - result.predictor_accesses / result.baseline_accesses
        assert abs(result.memory_savings - expected) < 1e-12

    def test_nodes_skipped_per_ray(self, small_bvh, small_workload):
        result = simulate_predictor(small_bvh, small_workload.rays, CFG)
        per_ray = result.nodes_skipped_per_ray()
        direct = (
            result.baseline_node_fetches - result.predictor_node_fetches
        ) / result.num_rays
        assert abs(per_ray - direct) < 1e-12


class TestPredictionOutcome:
    def test_fetch_totals(self):
        o = PredictionOutcome(
            verify_node_fetches=2, verify_tri_fetches=3,
            full_node_fetches=5, full_tri_fetches=7,
        )
        assert o.node_fetches == 7
        assert o.tri_fetches == 10
