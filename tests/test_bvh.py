"""Unit tests for BVH construction, flat storage, validation and stats."""

import numpy as np
import pytest

from repro.bvh import (
    MedianSplitBuilder,
    build_bvh,
    compute_stats,
    validate_bvh,
)
from repro.bvh.nodes import NODE_SIZE_BYTES, TRIANGLE_SIZE_BYTES
from repro.bvh.validate import BVHValidationError
from repro.geometry.triangle import TriangleMesh


def random_mesh(n=200, seed=2):
    rng = np.random.default_rng(seed)
    base = rng.uniform(0, 10, (n, 3))
    return TriangleMesh(base, base + rng.normal(0, 0.3, (n, 3)),
                        base + rng.normal(0, 0.3, (n, 3)))


@pytest.fixture(scope="module")
def mesh():
    return random_mesh()


class TestBuilders:
    @pytest.mark.parametrize("method", ["sah", "median", "lbvh"])
    def test_builds_valid_tree(self, mesh, method):
        bvh = build_bvh(mesh, method=method)
        validate_bvh(bvh)

    @pytest.mark.parametrize("method", ["sah", "median", "lbvh"])
    def test_leaf_size_respected_or_split_degenerate(self, mesh, method):
        bvh = build_bvh(mesh, method=method, max_leaf_size=4)
        leaves = bvh.leaf_nodes()
        # SAH may keep slightly larger leaves when splitting is not
        # worthwhile (cost model), but never beyond 2x the limit.
        assert int(bvh.tri_count[leaves].max()) <= 8

    def test_single_triangle(self, tiny_mesh):
        one = TriangleMesh(tiny_mesh.v0[:1], tiny_mesh.v1[:1], tiny_mesh.v2[:1])
        bvh = build_bvh(one)
        validate_bvh(bvh)
        assert bvh.num_nodes == 1
        assert bvh.is_leaf(0)

    def test_empty_mesh_raises(self):
        empty = TriangleMesh(np.zeros((0, 3)), np.zeros((0, 3)), np.zeros((0, 3)))
        with pytest.raises(ValueError):
            build_bvh(empty)

    def test_identical_centroids_terminate(self):
        # 20 coincident triangles: median split must still terminate.
        v0 = np.zeros((20, 3))
        v1 = np.tile([1.0, 0, 0], (20, 1))
        v2 = np.tile([0, 1.0, 0], (20, 1))
        mesh = TriangleMesh(v0, v1, v2)
        for method in ("sah", "median", "lbvh"):
            bvh = build_bvh(mesh, method=method)
            validate_bvh(bvh)

    def test_unknown_method_raises(self, mesh):
        with pytest.raises(ValueError):
            build_bvh(mesh, method="bogus")

    def test_invalid_leaf_size_raises(self):
        with pytest.raises(ValueError):
            MedianSplitBuilder(max_leaf_size=0)

    def test_sah_better_or_equal_quality_than_median(self, mesh):
        sah = compute_stats(build_bvh(mesh, method="sah"))
        median = compute_stats(build_bvh(mesh, method="median"))
        # SAH should not be dramatically worse than median split.
        assert sah.sah_cost <= median.sah_cost * 1.2


class TestFlatBVH:
    @pytest.fixture(scope="class")
    def bvh(self, mesh):
        return build_bvh(mesh)

    def test_root_is_zero_and_bounds_scene(self, bvh, mesh):
        box = bvh.root_aabb()
        scene = mesh.scene_aabb()
        assert np.allclose(box.lo, scene.lo)
        assert np.allclose(box.hi, scene.hi)

    def test_depths_root_zero(self, bvh):
        assert bvh.depths()[0] == 0

    def test_max_depth_positive(self, bvh):
        assert bvh.max_depth() > 0

    def test_leaf_interior_partition(self, bvh):
        assert len(bvh.leaf_nodes()) + len(bvh.interior_nodes()) == bvh.num_nodes

    def test_binary_tree_node_count(self, bvh):
        # A full binary tree: interior = leaves - 1.
        assert len(bvh.interior_nodes()) == len(bvh.leaf_nodes()) - 1

    def test_leaf_of_triangle_consistent(self, bvh):
        mapping = bvh.leaf_of_triangle()
        assert (mapping >= 0).all()
        for tri in [0, len(mapping) // 2, len(mapping) - 1]:
            leaf = mapping[tri]
            start = bvh.first_tri[leaf]
            assert start <= tri < start + bvh.tri_count[leaf]

    def test_ancestor_level_zero_is_identity(self, bvh):
        assert bvh.ancestor(5, 0) == 5

    def test_ancestor_level_one_is_parent(self, bvh):
        node = int(bvh.leaf_nodes()[0])
        assert bvh.ancestor(node, 1) == bvh.parent[node]

    def test_ancestor_clamps_at_root(self, bvh):
        assert bvh.ancestor(0, 10) == 0
        leaf = int(bvh.leaf_nodes()[0])
        assert bvh.ancestor(leaf, 1000) == 0

    def test_ancestors_table_matches_walk(self, bvh):
        for level in (1, 2, 3):
            table = bvh.ancestors(level)
            for node in range(0, bvh.num_nodes, max(1, bvh.num_nodes // 17)):
                assert table[node] == bvh.ancestor(node, level)

    def test_subtree_depth_leaf_is_zero(self, bvh):
        leaf = int(bvh.leaf_nodes()[0])
        assert bvh.subtree_depth_from(leaf) == 0

    def test_subtree_depth_root_is_max_depth(self, bvh):
        assert bvh.subtree_depth_from(0) == bvh.max_depth()

    def test_addresses_distinct_spaces(self, bvh):
        assert bvh.node_address(0) != bvh.triangle_address(0)
        assert bvh.node_address(1) - bvh.node_address(0) == NODE_SIZE_BYTES
        assert bvh.triangle_address(1) - bvh.triangle_address(0) == TRIANGLE_SIZE_BYTES

    def test_memory_footprint(self, bvh):
        expected = (
            NODE_SIZE_BYTES * bvh.num_nodes + TRIANGLE_SIZE_BYTES * bvh.num_triangles
        )
        assert bvh.memory_footprint_bytes() == expected

    def test_hot_view_consistency(self, bvh):
        hot = bvh.hot()
        assert hot.left == bvh.left.tolist()
        assert len(hot.tri_v0) == bvh.num_triangles
        # Cached: second call returns the same object.
        assert bvh.hot() is hot


class TestValidate:
    def test_detects_broken_parent(self, mesh):
        bvh = build_bvh(mesh)
        bvh.parent = bvh.parent.copy()
        child = int(bvh.left[0])
        bvh.parent[child] = child  # corrupt
        with pytest.raises(BVHValidationError):
            validate_bvh(bvh)

    def test_detects_non_bounding_parent(self, mesh):
        bvh = build_bvh(mesh)
        bvh.lo = bvh.lo.copy()
        bvh.lo[0] = bvh.lo[0] + 5.0  # root no longer bounds children
        with pytest.raises(BVHValidationError):
            validate_bvh(bvh)

    def test_detects_bad_permutation(self, mesh):
        bvh = build_bvh(mesh)
        bvh.tri_indices = bvh.tri_indices.copy()
        bvh.tri_indices[0] = bvh.tri_indices[1]
        with pytest.raises(BVHValidationError):
            validate_bvh(bvh)


class TestStats:
    def test_counts(self, mesh):
        bvh = build_bvh(mesh)
        stats = compute_stats(bvh)
        assert stats.num_nodes == bvh.num_nodes
        assert stats.num_interior + stats.num_leaves == stats.num_nodes
        assert stats.num_triangles == len(mesh)
        assert stats.max_depth == bvh.max_depth()
        assert stats.total_bytes == bvh.memory_footprint_bytes()

    def test_avg_tris_per_leaf(self, mesh):
        bvh = build_bvh(mesh, max_leaf_size=4)
        stats = compute_stats(bvh)
        assert 1.0 <= stats.avg_tris_per_leaf <= 8.0
        assert stats.max_tris_per_leaf >= stats.avg_tris_per_leaf

    def test_sah_cost_positive(self, mesh):
        stats = compute_stats(build_bvh(mesh))
        assert stats.sah_cost > 0.0
