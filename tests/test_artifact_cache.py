"""Content-addressed BVH artifact cache: keys, atomicity, resilience."""

import glob
import os

import numpy as np
import pytest

from repro.bvh import build_bvh
from repro.bvh.cache import (
    ARTIFACT_CACHE_ENV,
    BVHArtifactCache,
    cached_build_bvh,
    configure_artifact_cache,
    get_artifact_cache,
    mesh_digest,
)
from repro.bvh.io import FORMAT_VERSION


@pytest.fixture(autouse=True)
def no_leaked_cache():
    """Every test starts and ends with the cache deconfigured."""
    configure_artifact_cache(None)
    yield
    configure_artifact_cache(None)


def _assert_same_tree(a, b):
    assert np.array_equal(a.lo, b.lo)
    assert np.array_equal(a.hi, b.hi)
    assert np.array_equal(a.left, b.left)
    assert np.array_equal(a.right, b.right)
    assert np.array_equal(a.first_tri, b.first_tri)
    assert np.array_equal(a.tri_count, b.tri_count)
    assert np.array_equal(a.tri_indices, b.tri_indices)


class TestRoundtrip:
    def test_miss_then_hit_returns_equal_tree(self, tmp_path, small_scene):
        cache = BVHArtifactCache(str(tmp_path))
        first = cache.get_or_build(small_scene.mesh)
        second = cache.get_or_build(small_scene.mesh)
        assert (cache.misses, cache.hits) == (1, 1)
        _assert_same_tree(first, second)

    def test_cached_tree_matches_plain_build(self, tmp_path, small_scene):
        cache = BVHArtifactCache(str(tmp_path))
        cache.get_or_build(small_scene.mesh)
        # A second cache object over the same directory hits cold.
        reloaded = BVHArtifactCache(str(tmp_path)).get_or_build(small_scene.mesh)
        _assert_same_tree(reloaded, build_bvh(small_scene.mesh, method="sah"))

    def test_no_temp_files_left_behind(self, tmp_path, small_scene):
        cache = BVHArtifactCache(str(tmp_path))
        cache.get_or_build(small_scene.mesh)
        assert not glob.glob(os.path.join(str(tmp_path), "*.tmp.npz"))
        assert not glob.glob(os.path.join(str(tmp_path), ".*"))


class TestKeying:
    def test_key_covers_every_build_input(self, tmp_path, small_scene, tiny_mesh):
        cache = BVHArtifactCache(str(tmp_path))
        base = cache.key(small_scene.mesh)
        assert cache.key(small_scene.mesh) == base  # deterministic
        assert cache.key(small_scene.mesh, method="median") != base
        assert cache.key(small_scene.mesh, max_leaf_size=8) != base
        assert cache.key(tiny_mesh) != base

    def test_mesh_digest_tracks_content(self, tiny_mesh):
        from repro.geometry.triangle import TriangleMesh

        moved = TriangleMesh(tiny_mesh.v0 + 1.0, tiny_mesh.v1 + 1.0,
                             tiny_mesh.v2 + 1.0)
        assert mesh_digest(moved) != mesh_digest(tiny_mesh)

    def test_fingerprint_pins_format_version_not_path(self, tmp_path):
        fp = BVHArtifactCache(str(tmp_path)).fingerprint()
        assert fp == {"enabled": True, "format_version": FORMAT_VERSION}
        assert str(tmp_path) not in str(fp)


class TestCorruption:
    def test_unreadable_entry_is_miss_and_deleted(self, tmp_path, small_scene):
        cache = BVHArtifactCache(str(tmp_path))
        cache.get_or_build(small_scene.mesh)
        key = cache.key(small_scene.mesh)
        with open(cache.path(key), "wb") as handle:
            handle.write(b"torn write, not an npz")
        rebuilt = cache.get_or_build(small_scene.mesh)
        assert cache.invalidated == 1
        assert cache.misses == 2  # the corrupt entry never counted as a hit
        _assert_same_tree(rebuilt, build_bvh(small_scene.mesh, method="sah"))

    def test_describe_reports_counters(self, tmp_path, small_scene):
        cache = BVHArtifactCache(str(tmp_path))
        cache.get_or_build(small_scene.mesh)
        cache.get_or_build(small_scene.mesh)
        desc = cache.describe()
        assert desc["root"] == str(tmp_path)
        assert desc["hits"] == 1 and desc["misses"] == 1
        assert desc["invalidated"] == 0


class TestConfiguration:
    def test_configure_sets_and_clears_env(self, tmp_path):
        configure_artifact_cache(str(tmp_path))
        assert os.environ[ARTIFACT_CACHE_ENV] == str(tmp_path)
        assert get_artifact_cache().root == str(tmp_path)
        configure_artifact_cache(None)
        assert ARTIFACT_CACHE_ENV not in os.environ
        assert get_artifact_cache() is None

    def test_env_var_alone_activates_cache(self, tmp_path):
        # Workers inherit only the environment; get_artifact_cache must
        # pick the directory up without an explicit configure call.
        os.environ[ARTIFACT_CACHE_ENV] = str(tmp_path)
        try:
            cache = get_artifact_cache()
            assert cache is not None and cache.root == str(tmp_path)
        finally:
            configure_artifact_cache(None)

    def test_cached_build_without_cache_is_plain_build(self, small_scene):
        assert get_artifact_cache() is None
        bvh = cached_build_bvh(small_scene.mesh)
        _assert_same_tree(bvh, build_bvh(small_scene.mesh, method="sah"))

    def test_cached_build_with_cache_stores_entry(self, tmp_path, small_scene):
        configure_artifact_cache(str(tmp_path))
        cached_build_bvh(small_scene.mesh)
        assert len(glob.glob(os.path.join(str(tmp_path), "*.npz"))) == 1
