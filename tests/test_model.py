"""Unit tests for the Equation 1 analytic model (Section 3, Table 5)."""

import math

import pytest

from repro.core import PredictorConfig, simulate_predictor
from repro.core.model import (
    Equation1Inputs,
    estimate_avg_nodes,
    estimate_nodes_skipped,
    inputs_from_simulation,
)


class TestEquation1:
    def test_no_predictions_means_no_change(self):
        inputs = Equation1Inputs(p=0.0, v=0.0, n=20.0, k=1.0, m=3.0)
        assert estimate_avg_nodes(inputs) == 20.0
        assert estimate_nodes_skipped(inputs) == 0.0

    def test_all_verified_skips_everything_but_km(self):
        inputs = Equation1Inputs(p=1.0, v=1.0, n=20.0, k=1.0, m=3.0)
        assert estimate_avg_nodes(inputs) == 3.0
        assert estimate_nodes_skipped(inputs) == 17.0

    def test_all_mispredicted_adds_pure_overhead(self):
        inputs = Equation1Inputs(p=1.0, v=0.0, n=20.0, k=1.0, m=3.0)
        assert estimate_avg_nodes(inputs) == 23.0
        assert estimate_nodes_skipped(inputs) == -3.0

    def test_paper_table5_numbers(self):
        # v=0.246, n=28.382, p=0.955, k=1, m=2.810 -> ~4.3 nodes skipped.
        inputs = Equation1Inputs(p=0.955, v=0.246, n=28.382, k=1.0, m=2.810)
        assert math.isclose(estimate_nodes_skipped(inputs), 4.298, abs_tol=0.01)

    def test_identity(self):
        inputs = Equation1Inputs(p=0.7, v=0.2, n=25.0, k=2.0, m=3.0)
        assert math.isclose(
            estimate_avg_nodes(inputs) + estimate_nodes_skipped(inputs), inputs.n
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            Equation1Inputs(p=0.2, v=0.5, n=10, k=1, m=1)  # v > p
        with pytest.raises(ValueError):
            Equation1Inputs(p=0.5, v=0.2, n=-1, k=1, m=1)


class TestInputsFromSimulation:
    def test_requires_outcomes(self, small_bvh, small_workload):
        result = simulate_predictor(small_bvh, small_workload.rays)
        with pytest.raises(ValueError):
            inputs_from_simulation(result)

    def test_extraction(self, small_bvh, small_workload):
        cfg = PredictorConfig(origin_bits=3, direction_bits=2, go_up_level=2)
        result = simulate_predictor(
            small_bvh, small_workload.rays, cfg, keep_outcomes=True
        )
        inputs = inputs_from_simulation(result)
        assert math.isclose(inputs.p, result.predicted_rate)
        assert math.isclose(inputs.v, result.verified_rate)
        assert inputs.n > 0
        assert inputs.k >= 1.0

    def test_estimate_tracks_measurement(self, small_bvh, small_workload):
        """Table 5's point: Equation 1 approximates the measured savings."""
        cfg = PredictorConfig(origin_bits=3, direction_bits=2, go_up_level=2)
        result = simulate_predictor(
            small_bvh, small_workload.rays, cfg, keep_outcomes=True
        )
        inputs = inputs_from_simulation(result)
        estimated = estimate_nodes_skipped(inputs)
        actual = result.nodes_skipped_per_ray()
        # The estimate uses frame averages, so agreement is approximate;
        # paper shows 4.30 vs 3.73 (~15 % apart).
        assert abs(estimated - actual) <= max(1.5, 0.5 * abs(actual))
