"""Unit tests for the RT-unit timing model and top-level simulator."""

import pytest

from repro.core import PredictorConfig
from repro.gpu import GPUConfig, MemoryHierarchy, RTUnit, simulate_workload
from repro.gpu.config import CacheConfig, MemoryConfig, RTUnitConfig
from repro.gpu.simulator import split_rays_across_sms
from repro.trace import TraversalStats, trace_occlusion_batch

PC = PredictorConfig(origin_bits=3, direction_bits=2, go_up_level=2)


def run_unit(bvh, rays, predictor_config=None, **gpu_overrides):
    config = GPUConfig(num_sms=1, predictor=predictor_config, **gpu_overrides)
    memory = MemoryHierarchy(config.memory)
    unit = RTUnit(bvh, config, memory)
    return unit.run(rays)


class TestFunctionalEquivalence:
    """The timing model must compute the same hits as the reference."""

    def test_baseline_hits_match_reference(self, small_bvh, small_workload):
        reference = trace_occlusion_batch(small_bvh, small_workload.rays)
        result = run_unit(small_bvh, small_workload.rays)
        assert result.hits == int(reference.sum())

    def test_predictor_hits_match_reference(self, small_bvh, small_workload):
        """Prediction is speculation: results must be identical."""
        reference = trace_occlusion_batch(small_bvh, small_workload.rays)
        result = run_unit(small_bvh, small_workload.rays, PC)
        assert result.hits == int(reference.sum())

    def test_repack_does_not_change_results(self, small_bvh, small_workload):
        with_repack = run_unit(small_bvh, small_workload.rays, PC)
        without = run_unit(
            small_bvh, small_workload.rays, PC.with_overrides(repack=False)
        )
        assert with_repack.hits == without.hits
        assert with_repack.rays == without.rays

    def test_baseline_node_fetches_match_reference(self, small_bvh, small_workload):
        # The RT unit pops per-ray stacks in scalar order, so its traffic
        # matches the scalar engine exactly; the wavefront engine visits
        # nodes in a different order and retires any-hit rays at
        # different points, so only hit *results* (not fetch counts) are
        # comparable against it.
        stats = TraversalStats()
        trace_occlusion_batch(
            small_bvh, small_workload.rays, stats=stats, engine="scalar"
        )
        result = run_unit(small_bvh, small_workload.rays)
        assert result.node_fetches == stats.node_fetches
        assert result.tri_fetches == stats.tri_fetches


class TestCounters:
    def test_ray_accounting(self, small_bvh, small_workload):
        result = run_unit(small_bvh, small_workload.rays, PC)
        assert result.rays == len(small_workload)
        assert 0 <= result.verified <= result.predicted <= result.rays
        assert result.predictor_lookups == result.rays
        assert result.predictor_updates == result.hits

    def test_cycles_positive_and_bounded(self, small_bvh, small_workload):
        result = run_unit(small_bvh, small_workload.rays)
        assert result.cycles > 0
        # Sanity bound: cannot be faster than one warp-step per cycle.
        assert result.cycles >= result.warp_steps / 4

    def test_simt_efficiency_range(self, small_bvh, small_workload):
        result = run_unit(small_bvh, small_workload.rays)
        assert 0.0 < result.simt_efficiency <= 1.0

    def test_l1_stats(self, small_bvh, small_workload):
        result = run_unit(small_bvh, small_workload.rays)
        assert result.l1_accesses > 0
        assert 0.0 <= result.l1_hit_rate <= 1.0

    def test_misprediction_accounting(self, small_bvh, small_workload):
        result = run_unit(small_bvh, small_workload.rays, PC)
        mispredicted = result.predicted - result.verified
        if mispredicted:
            assert (
                result.misprediction_node_fetches
                + result.misprediction_tri_fetches
                > 0
            )

    def test_baseline_has_no_predictor_traffic(self, small_bvh, small_workload):
        result = run_unit(small_bvh, small_workload.rays)
        assert result.predicted == 0
        assert result.predictor_lookups == 0
        assert result.collector_warps == 0

    def test_collector_used_with_repack(self, small_bvh, small_workload):
        result = run_unit(small_bvh, small_workload.rays, PC)
        if result.predicted > 32:
            assert result.collector_warps > 0

    def test_no_collector_without_repack(self, small_bvh, small_workload):
        result = run_unit(
            small_bvh, small_workload.rays, PC.with_overrides(repack=False)
        )
        assert result.collector_warps == 0


class TestDeterminism:
    def test_repeat_runs_identical(self, small_bvh, small_workload):
        a = run_unit(small_bvh, small_workload.rays, PC)
        b = run_unit(small_bvh, small_workload.rays, PC)
        assert a.cycles == b.cycles
        assert a.node_fetches == b.node_fetches
        assert a.verified == b.verified


class TestConfigSensitivity:
    def test_bigger_l1_not_slower(self, small_bvh, small_workload):
        small = run_unit(
            small_bvh, small_workload.rays,
            memory=MemoryConfig(l1=CacheConfig(size_bytes=1024, ways=8)),
        )
        large = run_unit(
            small_bvh, small_workload.rays,
            memory=MemoryConfig(l1=CacheConfig(size_bytes=64 * 1024)),
        )
        assert large.cycles <= small.cycles
        assert large.l1_hit_rate >= small.l1_hit_rate

    def test_higher_intersection_latency_slower(self, small_bvh, small_workload):
        fast = run_unit(
            small_bvh, small_workload.rays,
            rt_unit=RTUnitConfig(box_test_latency=1, tri_test_latency=1),
        )
        slow = run_unit(
            small_bvh, small_workload.rays,
            rt_unit=RTUnitConfig(box_test_latency=16, tri_test_latency=16),
        )
        assert slow.cycles > fast.cycles

    def test_warp_barrier_slower(self, small_bvh, small_workload):
        free = run_unit(small_bvh, small_workload.rays)
        barrier = run_unit(
            small_bvh, small_workload.rays, rt_unit=RTUnitConfig(warp_barrier=True)
        )
        assert barrier.cycles >= free.cycles
        assert barrier.hits == free.hits


class TestSimulator:
    def test_split_round_robin(self, small_workload):
        parts = split_rays_across_sms(small_workload.rays, 2, warp_size=32)
        assert sum(len(p) for p in parts) == len(small_workload)
        # First warp goes to SM 0, second to SM 1.
        assert parts[0][0] == 0
        if len(small_workload) > 32:
            assert parts[1][0] == 32

    def test_split_validation(self, small_workload):
        with pytest.raises(ValueError):
            split_rays_across_sms(small_workload.rays, 0)

    def test_simulate_workload_aggregates(self, small_bvh, small_workload):
        out = simulate_workload(small_bvh, small_workload.rays, GPUConfig(num_sms=2))
        assert len(out.per_sm) == 2
        assert out.rays == len(small_workload)
        assert out.cycles == max(r.cycles for r in out.per_sm)

    def test_hits_invariant_across_sm_counts(self, small_bvh, small_workload):
        reference = trace_occlusion_batch(small_bvh, small_workload.rays)
        for sms in (1, 2, 4):
            out = simulate_workload(
                small_bvh, small_workload.rays, GPUConfig(num_sms=sms)
            )
            total_hits = sum(r.hits for r in out.per_sm)
            assert total_hits == int(reference.sum())

    def test_predictor_enabled_by_config(self, small_bvh, small_workload):
        out = simulate_workload(
            small_bvh, small_workload.rays, GPUConfig(num_sms=1, predictor=PC)
        )
        assert out.predictor_lookups == len(small_workload)

    def test_gpu_config_helpers(self):
        config = GPUConfig(predictor=PC)
        assert config.baseline().predictor is None
        assert config.with_overrides(num_sms=4).num_sms == 4
