"""Tests for the resilient execution layer (``repro.resilience``).

Covers the three tentpole pieces — crash-consistent checkpointing, the
run supervisor (retry/backoff/deadline/budget), and the degradation
ladder — plus their integration with the bench harness, the simulate
sweep, and the chaos machinery (``UnitFaultPlan``).
"""

import json
import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.bench import run_benchmarks, sweep_fingerprint
from repro.bench.harness import BenchPreset
from repro.errors import (
    CheckpointError,
    InjectedFaultError,
    InputValidationError,
    MemoryBudgetError,
    OracleMismatchError,
    SceneLoadError,
    SimulationStallError,
    SweepFailedError,
    TraversalError,
    UnitTimeoutError,
)
from repro.faults import UnitFaultPlan
from repro.resilience import (
    CHECKPOINT_SCHEMA,
    LADDER,
    PartialResultsManifest,
    ResilienceOptions,
    RetryPolicy,
    RunSupervisor,
    SweepCheckpoint,
    UnitEntry,
    atomic_write_json,
    classify_failure,
    next_rung,
    rungs_from,
)
from repro.resilience.supervisor import DEGRADE, FATAL, SKIP, TRANSIENT
from repro.resilience.sweep import (
    SimulatePreset,
    run_simulation_sweep,
    summarize_sweep,
)

#: Tiny bench preset for integration tests (two scenes so resume has
#: something to skip and something to run).
TINY_BENCH = BenchPreset(
    name="resilience-test",
    scenes=("SB", "SP"),
    width=6,
    height=6,
    spp=1,
    seed=1,
    detail=0.25,
    sim_rays=32,
    repeats=1,
)

TINY_SIM = SimulatePreset(
    name="resilience-test",
    scenes=("SB", "SP"),
    width=8,
    height=8,
    spp=1,
    detail=0.25,
    sim_rays=32,
)


def no_sleep(_delay):
    """Injectable sleep that records nothing and waits for nothing."""


def fast_options(**kwargs):
    kwargs.setdefault("sleep", no_sleep)
    return ResilienceOptions(**kwargs)


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_writes_valid_json_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "nested" / "out.json"
        atomic_write_json(str(path), {"b": 2, "a": [1, 2]})
        assert json.loads(path.read_text()) == {"a": [1, 2], "b": 2}
        assert not os.path.exists(str(path) + ".tmp")

    def test_overwrite_replaces_whole_file(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"long": "x" * 10000})
        atomic_write_json(path, {"short": 1})
        assert json.loads(open(path).read()) == {"short": 1}


class TestSweepCheckpoint:
    FP = {"kind": "test", "scenes": ("SB", "SP"), "seed": 1}

    def make(self, tmp_path):
        return SweepCheckpoint(
            str(tmp_path / "ck.json"), dict(self.FP), bench_schema="x/1"
        )

    def test_fresh_checkpoint_loads_nothing(self, tmp_path):
        ckpt = self.make(tmp_path)
        assert ckpt.load(resume=True) is False
        assert not ckpt.has("SB")

    def test_record_then_resume_round_trips(self, tmp_path):
        first = self.make(tmp_path)
        first.record("SB", {"value": 42})
        second = self.make(tmp_path)
        assert second.load(resume=True) is True
        assert second.has("SB")
        assert second.get("SB") == {"value": 42}
        assert second.hits == 1
        assert not second.has("SP")

    def test_fingerprint_tuple_vs_list_is_stable(self, tmp_path):
        # The fingerprint is canonicalized through JSON, so the tuples a
        # preset dataclass produces compare equal to the lists that come
        # back from disk.
        first = self.make(tmp_path)
        first.record("SB", {})
        listy = SweepCheckpoint(
            first.path, {"kind": "test", "scenes": ["SB", "SP"], "seed": 1}
        )
        assert listy.load(resume=True) is True

    def test_resume_false_discards_stale_file(self, tmp_path):
        first = self.make(tmp_path)
        first.record("SB", {})
        fresh = self.make(tmp_path)
        assert fresh.load(resume=False) is False
        assert not fresh.exists()

    def test_corrupt_file_raises_checkpoint_error(self, tmp_path):
        ckpt = self.make(tmp_path)
        with open(ckpt.path, "w") as handle:
            handle.write("{ torn")
        with pytest.raises(CheckpointError, match="unreadable"):
            ckpt.load(resume=True)

    def test_unknown_schema_raises(self, tmp_path):
        ckpt = self.make(tmp_path)
        atomic_write_json(ckpt.path, {"schema": "repro-checkpoint/999"})
        with pytest.raises(CheckpointError, match="schema"):
            ckpt.load(resume=True)

    def test_wrong_fingerprint_raises_with_diff(self, tmp_path):
        first = self.make(tmp_path)
        first.record("SB", {})
        other = SweepCheckpoint(
            first.path, {"kind": "test", "scenes": ("SB",), "seed": 2}
        )
        with pytest.raises(CheckpointError, match="different sweep"):
            other.load(resume=True)

    def test_schema_constant_matches_written_file(self, tmp_path):
        ckpt = self.make(tmp_path)
        ckpt.record("SB", {})
        state = json.loads(open(ckpt.path).read())
        assert state["schema"] == CHECKPOINT_SCHEMA
        assert state["bench_schema"] == "x/1"


# ----------------------------------------------------------------------
# Degradation ladder and manifest
# ----------------------------------------------------------------------
class TestLadder:
    def test_ladder_shape(self):
        assert LADDER == ("wavefront", "scalar", "predictor_off", "skip")

    def test_next_rung_descends_to_none(self):
        assert next_rung("wavefront") == "scalar"
        assert next_rung("predictor_off") == "skip"
        assert next_rung("skip") is None
        with pytest.raises(ValueError):
            next_rung("turbo")

    def test_rungs_from(self):
        assert rungs_from("scalar") == ("scalar", "predictor_off", "skip")

    def test_manifest_counts_and_flags(self):
        manifest = PartialResultsManifest()
        manifest.add(UnitEntry(unit="A", status="ok", rung="wavefront"))
        manifest.add(UnitEntry(unit="B", status="degraded", rung="scalar"))
        assert manifest.complete and not manifest.clean
        manifest.add(UnitEntry(unit="C", status="failed", rung="wavefront"))
        assert not manifest.complete
        counts = manifest.counts()
        assert (counts["ok"], counts["degraded"], counts["failed"]) == (1, 1, 1)
        assert "C: failed" in manifest.summary()

    def test_manifest_rejects_unknown_status(self):
        with pytest.raises(ValueError):
            PartialResultsManifest().add(
                UnitEntry(unit="A", status="great", rung="wavefront")
            )


# ----------------------------------------------------------------------
# Failure classification and retry policy
# ----------------------------------------------------------------------
class TestClassification:
    @pytest.mark.parametrize("exc,expected", [
        (OracleMismatchError("x"), FATAL),
        (CheckpointError("x"), FATAL),
        (InjectedFaultError("x"), TRANSIENT),
        (UnitTimeoutError("x"), TRANSIENT),
        (OSError("x"), TRANSIENT),
        (MemoryError(), DEGRADE),
        (MemoryBudgetError("x"), DEGRADE),
        (SimulationStallError("x"), DEGRADE),
        (TraversalError("x"), DEGRADE),
        (SceneLoadError("x"), SKIP),
        (InputValidationError("x"), SKIP),
        (RuntimeError("x"), DEGRADE),
    ])
    def test_classify(self, exc, expected):
        assert classify_failure(exc) == expected


class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.3,
            jitter=0.0,
        )
        rng = np.random.default_rng(0)
        delays = [policy.delay_s(n, rng) for n in (1, 2, 3, 4)]
        assert delays == [
            pytest.approx(0.1), pytest.approx(0.2),
            pytest.approx(0.3), pytest.approx(0.3),
        ]

    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_max_s=1.0, jitter=0.25)
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert 0.75 <= policy.delay_s(1, rng) <= 1.25

    def test_validation(self):
        with pytest.raises(InputValidationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(InputValidationError):
            RetryPolicy(jitter=2.0)

    def test_backoff_schedule_reproducible_across_supervisors(self):
        # Same seed + same unit name => identical jittered delays, no
        # matter which supervisor instance (or process) computes them.
        def schedule():
            supervisor = RunSupervisor(
                policy=RetryPolicy(seed=7, max_retries=3), sleep=no_sleep
            )
            rng = supervisor._unit_rng("SP")
            return [supervisor.policy.delay_s(n, rng) for n in (1, 2, 3)]

        assert schedule() == schedule()


# ----------------------------------------------------------------------
# The run supervisor
# ----------------------------------------------------------------------
class TestRunSupervisor:
    @staticmethod
    def make_fn_returning(results):
        """make_fn whose rung behaviour is table-driven.

        ``results[rung]`` is a value, an exception instance to raise, or
        a list consumed one element per attempt.
        """
        def make_fn(rung):
            spec = results.get(rung)
            if spec is None:
                return None

            def run():
                item = spec.pop(0) if isinstance(spec, list) else spec
                if isinstance(item, BaseException):
                    raise item
                return item

            return run

        return make_fn

    def test_clean_run_is_ok_at_start_rung(self):
        supervisor = RunSupervisor(sleep=no_sleep)
        outcome = supervisor.run_unit(
            "SB", self.make_fn_returning({"wavefront": "done"})
        )
        assert outcome.value == "done"
        assert outcome.entry.status == "ok"
        assert outcome.entry.rung == "wavefront"
        assert outcome.produced

    def test_transient_failure_retries_then_succeeds(self):
        slept = []
        supervisor = RunSupervisor(
            policy=RetryPolicy(max_retries=2), sleep=slept.append
        )
        outcome = supervisor.run_unit(
            "SB",
            self.make_fn_returning(
                {"wavefront": [InjectedFaultError("boom"), "recovered"]}
            ),
        )
        assert outcome.value == "recovered"
        assert outcome.entry.status == "ok"
        assert outcome.entry.attempts == 2
        assert outcome.entry.retries == 1
        assert len(slept) == 1 and slept[0] > 0
        assert supervisor.counters["retries"] == 1

    def test_degradable_failure_drops_a_rung(self):
        supervisor = RunSupervisor(sleep=no_sleep)
        outcome = supervisor.run_unit(
            "SB",
            self.make_fn_returning({
                "wavefront": MemoryBudgetError("too big"),
                "scalar": "lighter",
            }),
        )
        assert outcome.value == "lighter"
        assert outcome.entry.status == "degraded"
        assert outcome.entry.rung == "scalar"
        assert supervisor.counters["degradations"] == 1
        assert "MemoryBudgetError" in outcome.entry.errors[0]

    def test_exhausted_transient_degrades(self):
        supervisor = RunSupervisor(
            policy=RetryPolicy(max_retries=1), sleep=no_sleep
        )
        outcome = supervisor.run_unit(
            "SB",
            self.make_fn_returning({
                "wavefront": InjectedFaultError("always"),
                "scalar": "ok then",
            }),
        )
        assert outcome.entry.status == "degraded"
        assert outcome.entry.attempts == 3  # 2 on wavefront + 1 on scalar

    def test_skip_class_jumps_to_bottom(self):
        supervisor = RunSupervisor(sleep=no_sleep)
        outcome = supervisor.run_unit(
            "SB",
            self.make_fn_returning({
                "wavefront": SceneLoadError("corrupt asset"),
                # Never reached: skip-class failures do not descend.
                "scalar": "unreachable",
            }),
        )
        assert outcome.value is None
        assert outcome.entry.status == "skipped"
        assert outcome.entry.rung == "skip"
        assert not outcome.produced
        assert supervisor.counters["skips"] == 1

    def test_all_rungs_fail_ends_skipped(self):
        supervisor = RunSupervisor(
            policy=RetryPolicy(max_retries=0), sleep=no_sleep
        )
        outcome = supervisor.run_unit(
            "SB",
            self.make_fn_returning({
                "wavefront": RuntimeError("a"),
                "scalar": RuntimeError("b"),
                "predictor_off": RuntimeError("c"),
            }),
        )
        assert outcome.entry.status == "skipped"
        assert len(outcome.entry.errors) == 3

    def test_fatal_failure_propagates(self):
        supervisor = RunSupervisor(sleep=no_sleep)
        with pytest.raises(OracleMismatchError):
            supervisor.run_unit(
                "SB",
                self.make_fn_returning(
                    {"wavefront": OracleMismatchError("divergence")}
                ),
            )

    def test_no_degrade_raises_sweep_failed(self):
        supervisor = RunSupervisor(
            policy=RetryPolicy(max_retries=0), degrade=False, sleep=no_sleep
        )
        with pytest.raises(SweepFailedError) as excinfo:
            supervisor.run_unit(
                "SB",
                self.make_fn_returning({"wavefront": RuntimeError("bug")}),
            )
        assert excinfo.value.failed_units == ["SB"]
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_none_rung_is_stepped_over(self):
        supervisor = RunSupervisor(sleep=no_sleep)
        outcome = supervisor.run_unit(
            "SB",
            self.make_fn_returning({
                "wavefront": RuntimeError("fails"),
                # scalar: None => not applicable, no attempt
                "predictor_off": "bottom value",
            }),
        )
        assert outcome.value == "bottom value"
        assert outcome.entry.rung == "predictor_off"
        assert outcome.entry.attempts == 2

    def test_wall_clock_deadline_times_out(self):
        supervisor = RunSupervisor(
            policy=RetryPolicy(max_retries=0),
            unit_timeout_s=0.05,
            sleep=no_sleep,
        )
        release = threading.Event()

        def make_fn(rung):
            def run():
                release.wait(2.0)
                return "too late"

            return run

        outcome = supervisor.run_unit("SB", make_fn)
        release.set()  # unblock the abandoned workers
        assert outcome.entry.status == "skipped"
        assert supervisor.counters["timeouts"] == 3
        assert all("UnitTimeoutError" in e for e in outcome.entry.errors)

    def test_deadline_passes_fast_units(self):
        supervisor = RunSupervisor(unit_timeout_s=5.0, sleep=no_sleep)
        outcome = supervisor.run_unit(
            "SB", self.make_fn_returning({"wavefront": "quick"})
        )
        assert outcome.value == "quick"
        assert outcome.entry.status == "ok"

    def test_memory_budget_degrades_heavy_rung(self):
        supervisor = RunSupervisor(
            policy=RetryPolicy(max_retries=0),
            memory_budget_mb=4.0,
            sleep=no_sleep,
        )

        def make_fn(rung):
            def run():
                if rung == "wavefront":
                    hog = np.ones(4 * 2**20, dtype=np.float64)  # 32 MiB
                    return float(hog[0])
                return "lean"

            return run

        outcome = supervisor.run_unit("SB", make_fn)
        assert outcome.value == "lean"
        assert outcome.entry.status == "degraded"
        assert "MemoryBudgetError" in outcome.entry.errors[0]

    def test_describe_is_json_safe(self):
        supervisor = RunSupervisor(sleep=no_sleep)
        supervisor.run_unit(
            "SB", self.make_fn_returning({"wavefront": "x"})
        )
        assert json.dumps(supervisor.describe())


# ----------------------------------------------------------------------
# Chaos machinery (UnitFaultPlan)
# ----------------------------------------------------------------------
class TestUnitFaultPlan:
    def test_force_fail_first_n_attempts(self):
        plan = UnitFaultPlan(force_fail={"SB": 2})
        with pytest.raises(InjectedFaultError):
            plan.check("SB")
        with pytest.raises(InjectedFaultError):
            plan.check("SB")
        plan.check("SB")  # third attempt passes
        plan.check("SP")  # other units unaffected
        assert plan.injected == 2

    def test_force_fail_always(self):
        plan = UnitFaultPlan(force_fail={"SB": -1})
        for _ in range(5):
            with pytest.raises(InjectedFaultError):
                plan.check("SB")

    def test_random_faults_deterministic_per_seed(self):
        def outcomes(seed):
            plan = UnitFaultPlan(seed=seed, rate=0.5)
            result = []
            for unit in ("SB", "SP", "CK") * 10:
                try:
                    plan.check(unit)
                    result.append(0)
                except InjectedFaultError:
                    result.append(1)
            return result

        assert outcomes(3) == outcomes(3)
        assert outcomes(3) != outcomes(4)

    def test_unit_streams_independent_of_order(self):
        # Interleaving other units' checks must not shift a unit's own
        # fault schedule.
        def sb_only():
            plan = UnitFaultPlan(seed=1, rate=0.5)
            return [self._check(plan, "SB") for _ in range(20)]

        def sb_interleaved():
            plan = UnitFaultPlan(seed=1, rate=0.5)
            result = []
            for _ in range(20):
                self._check(plan, "CK")
                result.append(self._check(plan, "SB"))
            return result

        assert sb_only() == sb_interleaved()

    @staticmethod
    def _check(plan, unit):
        try:
            plan.check(unit)
            return 0
        except InjectedFaultError:
            return 1

    def test_cross_process_reproducibility(self):
        # The schedule a different process computes from the same seed is
        # bit-identical to ours (satellite: no legacy global RNG state).
        snippet = (
            "from repro.faults import UnitFaultPlan\n"
            "from repro.errors import InjectedFaultError\n"
            "plan = UnitFaultPlan(seed=11, rate=0.4)\n"
            "out = []\n"
            "for unit in ('SB', 'SP', 'CK') * 8:\n"
            "    try:\n"
            "        plan.check(unit)\n"
            "        out.append(0)\n"
            "    except InjectedFaultError:\n"
            "        out.append(1)\n"
            "print(''.join(map(str, out)))\n"
        )
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        plan = UnitFaultPlan(seed=11, rate=0.4)
        ours = "".join(
            str(self._check(plan, unit)) for unit in ("SB", "SP", "CK") * 8
        )
        assert result.stdout.strip() == ours

    def test_parse_force_fail(self):
        parsed = UnitFaultPlan.parse_force_fail(["SB", "SP:3"])
        assert parsed == {"SB": -1, "SP": 3}
        with pytest.raises(InputValidationError):
            UnitFaultPlan.parse_force_fail(["SB:lots"])
        with pytest.raises(InputValidationError):
            UnitFaultPlan.parse_force_fail([":3"])

    def test_rate_validation(self):
        with pytest.raises(InputValidationError):
            UnitFaultPlan(rate=1.5)


# ----------------------------------------------------------------------
# Bench harness integration
# ----------------------------------------------------------------------
class TestBenchResilience:
    def test_forced_failure_yields_complete_manifest(self, tmp_path):
        plan = UnitFaultPlan(force_fail={"SP": -1})
        payload = run_benchmarks(
            TINY_BENCH,
            resilience=fast_options(max_retries=0),
            fault_plan=plan,
        )
        manifest = payload["resilience"]["manifest"]
        units = {e["unit"]: e for e in manifest["units"]}
        assert manifest["complete"]
        assert units["SB"]["status"] == "ok"
        assert units["SP"]["status"] == "skipped"
        # Records exist for the healthy scene only.
        scenes_with_records = {r["scene"] for r in payload["results"]}
        assert scenes_with_records == {"SB"}
        assert payload["resilience"]["chaos"]["injected"] > 0

    def test_kill_and_resume_skips_completed_scenes(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        ckpt_path = str(tmp_path / "bench.ckpt.json")
        calls = []
        real = harness._scene_records

        def counting(preset, code, engines, say, predictor_enabled=True):
            calls.append(code)
            return real(preset, code, engines, say, predictor_enabled)

        monkeypatch.setattr(harness, "_scene_records", counting)

        # "Kill" the sweep mid-run: SP fails every attempt with
        # degradation off, so the run dies after SB checkpointed.
        with pytest.raises(SweepFailedError):
            run_benchmarks(
                TINY_BENCH,
                resilience=fast_options(
                    checkpoint_path=ckpt_path, max_retries=0, degrade=False
                ),
                fault_plan=UnitFaultPlan(force_fail={"SP": -1}),
            )
        assert calls == ["SB"]
        assert os.path.exists(ckpt_path)

        # Resume without the fault: SB must NOT re-run.
        calls.clear()
        payload = run_benchmarks(
            TINY_BENCH,
            resilience=fast_options(checkpoint_path=ckpt_path, resume=True),
        )
        assert calls == ["SP"]
        units = {e["unit"]: e for e in payload["resilience"]["manifest"]["units"]}
        assert units["SB"]["status"] == "resumed"
        assert units["SP"]["status"] == "ok"
        # The resumed records round-trip into the payload.
        assert {r["scene"] for r in payload["results"]} == {"SB", "SP"}
        assert payload["resilience"]["checkpoint"]["hits"] == 1

    def test_resume_refuses_other_fingerprint(self, tmp_path):
        ckpt_path = str(tmp_path / "bench.ckpt.json")
        run_benchmarks(
            TINY_BENCH, resilience=fast_options(checkpoint_path=ckpt_path)
        )
        from dataclasses import replace

        other = replace(TINY_BENCH, scenes=("SB",))
        with pytest.raises(CheckpointError):
            run_benchmarks(
                other,
                resilience=fast_options(
                    checkpoint_path=ckpt_path, resume=True
                ),
            )

    def test_legacy_path_unchanged_without_resilience(self):
        payload = run_benchmarks(TINY_BENCH)
        assert "resilience" not in payload

    def test_fingerprint_covers_preset_scenes_engines(self):
        fp = sweep_fingerprint(TINY_BENCH, ["SB"], ("scalar",))
        assert fp["kind"] == "bench"
        assert fp["scenes"] == ["SB"]
        assert fp["preset"]["name"] == TINY_BENCH.name


# ----------------------------------------------------------------------
# Simulate sweep integration
# ----------------------------------------------------------------------
class TestSimulateSweep:
    def test_clean_sweep(self):
        payload = run_simulation_sweep(TINY_SIM, options=fast_options())
        assert payload["schema"] == "repro-sim-sweep/1"
        assert {r["scene"] for r in payload["results"]} == {"SB", "SP"}
        assert payload["resilience"]["manifest"]["complete"]
        summary = summarize_sweep(payload)
        assert "SB" in summary and "2 ok" in summary

    def test_degraded_scene_marked_predictor_off(self):
        # Fail SB's first two rungs; predictor_off succeeds.
        plan = UnitFaultPlan(force_fail={"SB": 2})
        payload = run_simulation_sweep(
            TINY_SIM, options=fast_options(max_retries=0), fault_plan=plan
        )
        units = {
            e["unit"]: e
            for e in payload["resilience"]["manifest"]["units"]
        }
        assert units["SB"]["status"] == "degraded"
        assert units["SB"]["rung"] == "predictor_off"
        rows = {r["scene"]: r for r in payload["results"]}
        assert rows["SB"]["predictor_enabled"] is False
        assert rows["SB"]["predicted_rate"] == 0.0
        assert rows["SP"]["predictor_enabled"] is True

    def test_kill_and_resume(self, tmp_path):
        ckpt_path = str(tmp_path / "sim.ckpt.json")
        with pytest.raises(SweepFailedError):
            run_simulation_sweep(
                TINY_SIM,
                options=fast_options(
                    checkpoint_path=ckpt_path, max_retries=0, degrade=False
                ),
                fault_plan=UnitFaultPlan(force_fail={"SP": -1}),
            )
        payload = run_simulation_sweep(
            TINY_SIM,
            options=fast_options(checkpoint_path=ckpt_path, resume=True),
        )
        units = {
            e["unit"]: e
            for e in payload["resilience"]["manifest"]["units"]
        }
        assert units["SB"]["status"] == "resumed"
        assert units["SP"]["status"] == "ok"
        assert len(payload["results"]) == 2


# ----------------------------------------------------------------------
# Artifact schema
# ----------------------------------------------------------------------
class TestSchemaBump:
    def test_bench_schema_is_v6_and_backward_compatible(self):
        from repro.bench import ACCEPTED_SCHEMAS, BENCH_SCHEMA

        assert BENCH_SCHEMA == "repro-bench/6"
        assert "repro-bench/1" in ACCEPTED_SCHEMAS
        assert "repro-bench/2" in ACCEPTED_SCHEMAS
        assert "repro-bench/3" in ACCEPTED_SCHEMAS
        assert "repro-bench/4" in ACCEPTED_SCHEMAS
        assert "repro-bench/5" in ACCEPTED_SCHEMAS

    def test_resilient_payload_json_serializable(self):
        payload = run_benchmarks(
            TINY_BENCH,
            resilience=fast_options(),
            fault_plan=UnitFaultPlan(rate=0.0),
        )
        assert payload["schema"] == "repro-bench/6"
        json.dumps(payload)
        section = payload["resilience"]
        assert section["enabled"] is True
        assert set(section) >= {
            "options", "supervisor", "manifest", "checkpoint", "chaos"
        }


# ----------------------------------------------------------------------
# Profiler stop diagnostic (satellite)
# ----------------------------------------------------------------------
class TestProfilerStopDiagnostic:
    def test_clean_stop_raises_nothing(self):
        from repro.telemetry.profiling import SamplingProfiler

        profiler = SamplingProfiler(interval_s=0.001)
        profiler.start()
        time.sleep(0.02)
        profiler.stop()
        assert profiler._thread is None

    def test_wedged_thread_is_diagnosed(self, monkeypatch, caplog):
        import logging

        from repro.telemetry.profiling import SamplingProfiler

        profiler = SamplingProfiler(interval_s=0.001)
        release = threading.Event()
        wedged = threading.Thread(
            target=release.wait, name="repro-profiler", daemon=True
        )
        wedged.start()
        profiler._thread = wedged
        try:
            with caplog.at_level(logging.WARNING, "repro.telemetry.profiling"):
                with pytest.raises(RuntimeError, match="did not stop"):
                    profiler.stop(join_timeout_s=0.01)
            assert any("did not stop" in r.message for r in caplog.records)
            assert profiler._thread is None  # still resets; stop is final

            # The suppressing form logs but does not raise (used when an
            # exception is already propagating out of profile()).
            profiler._thread = wedged
            profiler.stop(join_timeout_s=0.01, raise_on_leak=False)
        finally:
            release.set()

    def test_profile_context_does_not_mask_workload_error(self, monkeypatch):
        from repro.telemetry import profiling

        profiler = profiling.SamplingProfiler(interval_s=0.001)

        def never_joins(self, timeout=None):
            return None

        with pytest.raises(ValueError, match="workload bug"):
            with profiler.profile():
                monkeypatch.setattr(
                    threading.Thread, "join", never_joins
                )
                raise ValueError("workload bug")
