"""Fault-injection framework and speculation-safety guard tests.

The central invariant (the paper's Section 3 contract, made executable):
no corrupted predictor state may ever change which rays report
occlusion.  Everything here either injects faults and asserts that
invariant, or exercises an individual guard directly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh import build_bvh
from repro.core import PredictorConfig, RayPredictor
from repro.core.table import PredictorTable
from repro.errors import (
    EXIT_ORACLE,
    EXIT_TRAVERSAL,
    EXIT_WATCHDOG,
    OracleMismatchError,
    SimulationStallError,
    TraversalError,
    exit_code_for,
)
from repro.faults import (
    FAULT_KINDS,
    FaultConfig,
    FaultInjector,
    FaultyPredictor,
    run_differential_oracle,
)
from repro.gpu import GPUConfig, simulate_workload
from repro.rays import generate_ao_workload
from repro.scenes import SCENE_CODES, get_scene
from repro.trace.traversal import occlusion_any_hit, occlusion_any_hit_tri


def _filled_table(num_entries=16, ways=2, nodes=(3, 5, 9, 12)):
    table = PredictorTable(num_entries=num_entries, ways=ways, hash_bits=8)
    for i, node in enumerate(nodes):
        table.update(i * 37, node)
    return table


class TestFaultInjectorTable:
    def test_determinism_same_seed_same_schedule(self):
        logs = []
        for _ in range(2):
            table = _filled_table()
            injector = FaultInjector(FaultConfig(seed=42, table_rate=1.0), num_nodes=64)
            for _ in range(20):
                injector.maybe_corrupt_table(table)
            logs.append([(r.kind, r.location, r.before, r.after) for r in injector.log])
        assert logs[0] == logs[1]
        assert len(logs[0]) == 20

    def test_different_seeds_differ(self):
        schedules = []
        for seed in (1, 2):
            table = _filled_table()
            injector = FaultInjector(FaultConfig(seed=seed, table_rate=1.0), num_nodes=64)
            for _ in range(20):
                injector.maybe_corrupt_table(table)
            schedules.append([(r.kind, r.location) for r in injector.log])
        assert schedules[0] != schedules[1]

    def test_rate_zero_never_injects(self):
        table = _filled_table()
        injector = FaultInjector(FaultConfig(seed=0, table_rate=0.0), num_nodes=64)
        for _ in range(100):
            assert injector.maybe_corrupt_table(table) is None
        assert injector.log == []

    def test_empty_table_is_noop(self):
        table = PredictorTable(num_entries=8, ways=2, hash_bits=8)
        injector = FaultInjector(FaultConfig(seed=0, table_rate=1.0), num_nodes=64)
        assert injector.corrupt_table_once(table) is None

    def test_every_kind_reachable_and_logged(self):
        table = _filled_table()
        injector = FaultInjector(FaultConfig(seed=7, table_rate=1.0), num_nodes=64)
        for _ in range(300):
            injector.corrupt_table_once(table)
        kinds = {r.kind for r in injector.log}
        assert kinds == set(FAULT_KINDS)

    def test_out_of_range_corruption_lands_in_table(self):
        table = _filled_table()
        injector = FaultInjector(
            FaultConfig(seed=3, table_rate=1.0, table_kinds=("out_of_range",)),
            num_nodes=64,
        )
        rec = injector.corrupt_table_once(table)
        assert rec.kind == "out_of_range"
        assert rec.after >= 64
        assert any(n >= 64 for n in table.iter_nodes())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(table_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(table_kinds=("bogus",))
        with pytest.raises(ValueError):
            FaultConfig(table_kinds=())


class TestFaultInjectorRaysAndGeometry:
    def test_perturb_rays_is_deterministic_and_logged(self, small_workload):
        rays = small_workload.rays
        batches = []
        for _ in range(2):
            injector = FaultInjector(FaultConfig(seed=5, ray_rate=0.2))
            batches.append(injector.perturb_rays(rays))
        np.testing.assert_array_equal(
            batches[0].origins, batches[1].origins
        )
        np.testing.assert_array_equal(
            batches[0].directions, batches[1].directions
        )
        # The original batch is untouched.
        assert np.isfinite(rays.origins).all()

    def test_perturbed_rays_fail_validation(self, small_workload):
        injector = FaultInjector(FaultConfig(seed=5, ray_rate=0.3))
        bad = injector.perturb_rays(small_workload.rays)
        filtered, report = bad.validate(mode="filter")
        assert not report.ok
        assert len(filtered) == len(bad) - report.num_invalid
        # Everything that survived is clean.
        _, recheck = filtered.validate(mode="report")
        assert recheck.ok

    def test_degrade_mesh_builds_and_traces(self, small_scene):
        injector = FaultInjector(FaultConfig(seed=9, geometry_rate=0.1))
        degraded = injector.degrade_mesh(small_scene.mesh)
        assert len(degraded) == len(small_scene.mesh)
        assert any(r.surface == "geometry" for r in injector.log)
        bvh = build_bvh(degraded, method="sah", validate=True)
        ray_batch = generate_ao_workload(
            small_scene, bvh, width=6, height=6, spp=1, seed=2
        ).rays
        for ray in ray_batch:
            occlusion_any_hit(bvh, ray)  # must not raise


class TestSpeculationGuards:
    def test_predictor_drops_out_of_range_nodes(self, small_bvh):
        pred = RayPredictor(small_bvh, PredictorConfig())
        pred.table.update(123, 1)
        # Corrupt the only stored node to an out-of-range index.
        set_index, way = pred.table.occupied_slots()[0]
        pred.table.corrupt_node(set_index, way, 0, small_bvh.num_nodes + 7)
        assert pred.predict(123) is None
        assert pred.guards.invalid_nodes_dropped == 1
        assert pred.guards.predictions_rejected == 1

    def test_predictor_keeps_valid_nodes(self, small_bvh):
        pred = RayPredictor(small_bvh, PredictorConfig())
        pred.table.update(123, 1)
        assert pred.predict(123) == [1]
        assert pred.guards.total_guard_events == 0

    def test_train_with_invalid_triangle_is_dropped(self, small_bvh):
        pred = RayPredictor(small_bvh, PredictorConfig())
        assert pred.train(1, small_bvh.num_triangles + 5) == -1
        assert pred.train(1, -3) == -1
        assert pred.guards.invalid_training_dropped == 2
        assert pred.table.stats.updates == 0
        assert pred.trained_node_for(-1) == -1

    def test_traversal_rejects_bad_start_nodes(self, small_bvh, small_workload):
        ray = small_workload.rays[0]
        for bad in ([small_bvh.num_nodes], [-1], [0, 10**9]):
            with pytest.raises(TraversalError) as info:
                occlusion_any_hit_tri(small_bvh, ray, start_nodes=bad)
            err = info.value
            assert err.num_nodes == small_bvh.num_nodes
            assert err.bad_nodes
            assert exit_code_for(err) == EXIT_TRAVERSAL

    def test_traversal_accepts_valid_start_nodes(self, small_bvh, small_workload):
        ray = small_workload.rays[0]
        full = occlusion_any_hit_tri(small_bvh, ray, start_nodes=[0])
        assert full == occlusion_any_hit_tri(small_bvh, ray)


class TestWatchdog:
    def test_cycle_cap_fires_with_diagnostics(self, small_bvh, small_workload):
        config = GPUConfig(watchdog_cycles=10)
        with pytest.raises(SimulationStallError) as info:
            simulate_workload(small_bvh, small_workload.rays, config)
        err = info.value
        assert err.cycles > 10
        assert err.diagnostics["total_rays"] > 0
        assert "retired" in str(err)
        assert exit_code_for(err) == EXIT_WATCHDOG

    def test_generous_cap_does_not_fire(self, small_bvh, small_workload):
        rays = small_workload.rays.subset(np.arange(64))
        config = GPUConfig(watchdog_cycles=50_000_000)
        out = simulate_workload(small_bvh, rays, config)
        assert out.rays == 64
        assert out.guard_restarts == 0


class TestDifferentialOracle:
    def test_invariant_holds_under_table_faults(self, small_bvh, small_workload):
        report = run_differential_oracle(
            small_bvh,
            small_workload.rays,
            fault_config=FaultConfig(seed=1, table_rate=0.3),
            in_flight=16,
            scene="small",
        )
        assert report.ok
        assert report.faults_injected > 0
        assert report.num_rays == len(small_workload.rays)
        report.raise_on_mismatch()  # no-op when clean
        assert "OK" in report.summary()

    def test_invariant_holds_with_ray_perturbation(self, small_bvh, small_workload):
        report = run_differential_oracle(
            small_bvh,
            small_workload.rays,
            fault_config=FaultConfig(seed=2, table_rate=0.3, ray_rate=0.1),
            in_flight=16,
            perturb_rays=True,
            scene="small+rays",
        )
        assert report.ok
        assert report.rays_filtered > 0

    def test_mismatch_raises_structured_error(self):
        from repro.faults.oracle import DifferentialReport

        report = DifferentialReport(
            scene="x", num_rays=10, rays_filtered=0, faults_injected=1,
            guard_drops=0, guard_fallbacks=0, predicted=1, verified=0,
            mismatches=[3, 7],
        )
        assert not report.ok
        with pytest.raises(OracleMismatchError) as info:
            report.raise_on_mismatch()
        assert info.value.mismatched_rays == [3, 7]
        assert exit_code_for(info.value) == EXIT_ORACLE

    def test_faulty_predictor_in_timing_simulator(self, small_bvh, small_workload):
        """The corrupted-table proxy also drops into the GPU timing model."""
        rays = small_workload.rays.subset(np.arange(128))
        config = PredictorConfig()
        predictor = FaultyPredictor(
            RayPredictor(small_bvh, config),
            FaultInjector(FaultConfig(seed=4, table_rate=0.5)),
        )
        gpu = GPUConfig(predictor=config)
        out = simulate_workload(
            small_bvh, rays, gpu, predictors=[predictor, predictor]
        )
        baseline = simulate_workload(small_bvh, rays, gpu.baseline())
        assert out.hit_rate == baseline.hit_rate

    @pytest.mark.parametrize("code", SCENE_CODES)
    def test_acceptance_all_seven_scenes(self, code):
        """Acceptance criterion: >= 10% corruption, bit-identical occlusion."""
        scene = get_scene(code, detail=0.2)
        bvh = build_bvh(scene.mesh, validate=True)
        rays = generate_ao_workload(
            scene, bvh, width=16, height=16, spp=1, seed=3
        ).rays
        rays = rays.subset(np.arange(min(300, len(rays))))
        report = run_differential_oracle(
            bvh,
            rays,
            fault_config=FaultConfig(seed=11, table_rate=0.15),
            in_flight=16,
            scene=code,
        )
        assert report.ok, report.summary()
        assert report.faults_injected > 0


class TestOracleProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        rate=st.floats(min_value=0.1, max_value=0.9),
        in_flight=st.sampled_from([1, 8, 64]),
    )
    def test_randomized_fault_schedules_preserve_occlusion(
        self, seed, rate, in_flight
    ):
        """Property: any seedable fault schedule leaves occlusion intact."""
        scene = get_scene("FR", detail=0.15)
        bvh = build_bvh(scene.mesh)
        rays = generate_ao_workload(
            scene, bvh, width=8, height=8, spp=1, seed=1
        ).rays
        report = run_differential_oracle(
            bvh,
            rays,
            fault_config=FaultConfig(seed=seed, table_rate=rate),
            in_flight=in_flight,
            scene=f"FR/seed{seed}",
        )
        assert report.ok, report.summary()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_guarded_lookup_never_returns_invalid(self, seed):
        """Property: predict() output is always in-range, whatever the faults."""
        scene = get_scene("SP", detail=0.15)
        bvh = build_bvh(scene.mesh)
        pred = RayPredictor(bvh, PredictorConfig())
        injector = FaultInjector(FaultConfig(seed=seed, table_rate=1.0), bvh.num_nodes)
        rng = np.random.default_rng(seed)
        for _ in range(50):
            pred.table.update(int(rng.integers(1 << 15)), int(rng.integers(bvh.num_nodes)))
            injector.corrupt_table_once(pred.table)
            nodes = pred.predict(int(rng.integers(1 << 15)))
            if nodes:
                assert all(0 <= n < bvh.num_nodes for n in nodes)
