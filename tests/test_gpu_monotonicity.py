"""Directional (monotonicity) checks on the timing model.

Small workloads, coarse assertions: the simulator must respond to each
architectural knob in the physically sensible direction.  These guard
against regressions in the discrete-event core that unit tests on
individual components would miss.
"""

import numpy as np
import pytest

from repro.gpu import GPUConfig, simulate_workload
from repro.gpu.config import CacheConfig, DRAMConfig, MemoryConfig, RTUnitConfig


@pytest.fixture(scope="module")
def rays(small_workload):
    return small_workload.rays.subset(np.arange(min(256, len(small_workload))))


def run(bvh, rays, **overrides):
    return simulate_workload(bvh, rays, GPUConfig(num_sms=1, **overrides))


class TestMemoryKnobs:
    def test_slower_dram_never_faster(self, small_bvh, rays):
        fast = run(small_bvh, rays, memory=MemoryConfig(dram=DRAMConfig(latency=40)))
        slow = run(small_bvh, rays, memory=MemoryConfig(dram=DRAMConfig(latency=400)))
        assert slow.cycles >= fast.cycles

    def test_fewer_banks_never_faster(self, small_bvh, rays):
        many = run(small_bvh, rays, memory=MemoryConfig(dram=DRAMConfig(num_banks=16)))
        one = run(small_bvh, rays, memory=MemoryConfig(dram=DRAMConfig(num_banks=1)))
        assert one.cycles >= many.cycles

    def test_slower_l2_never_faster(self, small_bvh, rays):
        fast = run(
            small_bvh, rays,
            memory=MemoryConfig(l2=CacheConfig(size_bytes=32 * 1024, latency=10)),
        )
        slow = run(
            small_bvh, rays,
            memory=MemoryConfig(l2=CacheConfig(size_bytes=32 * 1024, latency=120)),
        )
        assert slow.cycles >= fast.cycles

    def test_more_ports_never_slower(self, small_bvh, rays):
        narrow = run(small_bvh, rays, memory=MemoryConfig(l1_ports=1))
        wide = run(small_bvh, rays, memory=MemoryConfig(l1_ports=8))
        assert wide.cycles <= narrow.cycles


class TestRTUnitKnobs:
    def test_more_resident_warps_never_slower(self, small_bvh, rays):
        few = run(small_bvh, rays, rt_unit=RTUnitConfig(max_warps=2))
        many = run(small_bvh, rays, rt_unit=RTUnitConfig(max_warps=16))
        assert many.cycles <= few.cycles

    def test_stack_spill_penalty_never_helps(self, small_bvh, rays):
        cheap = run(
            small_bvh, rays,
            rt_unit=RTUnitConfig(stack_entries=2, stack_spill_penalty=0),
        )
        costly = run(
            small_bvh, rays,
            rt_unit=RTUnitConfig(stack_entries=2, stack_spill_penalty=32),
        )
        assert costly.cycles >= cheap.cycles

    def test_results_invariant_to_timing_knobs(self, small_bvh, rays):
        """Timing parameters must never change *what* is computed."""
        variants = [
            run(small_bvh, rays),
            run(small_bvh, rays, memory=MemoryConfig(dram=DRAMConfig(latency=500))),
            run(small_bvh, rays, rt_unit=RTUnitConfig(max_warps=1)),
            run(small_bvh, rays, rt_unit=RTUnitConfig(warp_barrier=True)),
        ]
        hits = {sum(r.hits for r in v.per_sm) for v in variants}
        fetches = {v.node_fetches for v in variants}
        assert len(hits) == 1
        assert len(fetches) == 1
