"""Unit tests for repro.geometry.triangle."""

import math

import numpy as np
import pytest

from repro.geometry.triangle import Triangle, TriangleMesh


class TestTriangle:
    UNIT = Triangle((0, 0, 0), (1, 0, 0), (0, 1, 0))

    def test_aabb(self):
        box = self.UNIT.aabb()
        assert box.lo == (0, 0, 0)
        assert box.hi == (1, 1, 0)

    def test_centroid(self):
        c = self.UNIT.centroid()
        assert math.isclose(c[0], 1 / 3)
        assert math.isclose(c[1], 1 / 3)
        assert c[2] == 0.0

    def test_normal_direction(self):
        n = self.UNIT.normal()
        assert n == (0, 0, 1)

    def test_area(self):
        assert math.isclose(self.UNIT.area(), 0.5)

    def test_degenerate_area_zero(self):
        line = Triangle((0, 0, 0), (1, 0, 0), (2, 0, 0))
        assert line.area() == 0.0


class TestTriangleMesh:
    def test_len_and_getitem(self, tiny_mesh):
        assert len(tiny_mesh) == 2
        tri = tiny_mesh[1]
        assert isinstance(tri, Triangle)
        assert tri.v2 == (0, 1, 0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((2, 3)), np.zeros((3, 3)), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 2)))

    def test_from_vertices_faces(self):
        vertices = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0]], dtype=float)
        faces = np.array([[0, 1, 2], [1, 3, 2]])
        mesh = TriangleMesh.from_vertices_faces(vertices, faces)
        assert len(mesh) == 2
        assert mesh.v1[1].tolist() == [1, 1, 0]

    def test_concatenate(self, tiny_mesh):
        both = TriangleMesh.concatenate([tiny_mesh, tiny_mesh])
        assert len(both) == 4

    def test_concatenate_empty(self):
        assert len(TriangleMesh.concatenate([])) == 0

    def test_centroids(self, tiny_mesh):
        cents = tiny_mesh.centroids()
        assert cents.shape == (2, 3)
        assert np.allclose(cents[0], [2 / 3, 1 / 3, 0])

    def test_bounds(self, tiny_mesh):
        lo, hi = tiny_mesh.bounds()
        assert np.allclose(lo[0], [0, 0, 0])
        assert np.allclose(hi[0], [1, 1, 0])

    def test_scene_aabb(self, tiny_mesh):
        box = tiny_mesh.scene_aabb()
        assert box.lo == (0, 0, 0)
        assert box.hi == (1, 1, 0)

    def test_scene_aabb_empty(self):
        mesh = TriangleMesh(np.zeros((0, 3)), np.zeros((0, 3)), np.zeros((0, 3)))
        assert mesh.scene_aabb().is_empty()

    def test_transformed(self, tiny_mesh):
        moved = tiny_mesh.transformed(scale=2.0, translate=(1, 0, 0))
        assert np.allclose(moved.v1[0], [3, 0, 0])
        # Original untouched.
        assert np.allclose(tiny_mesh.v1[0], [1, 0, 0])
