"""Ray-batch input-boundary validation tests.

`validate_ray_batch` is the screen between workload generation (or fault
injection) and traversal: NaN/inf coordinates silently fail every slab
test, and a zero-length direction raises deep inside `Ray` construction.
"""

import numpy as np
import pytest

from repro.errors import EXIT_INPUT, RayValidationError, exit_code_for
from repro.geometry.ray import Ray, RayBatch, validate_ray_batch
from repro.rays import generate_ao_workload
from repro.trace.traversal import occlusion_any_hit


def _batch_with_defects():
    origins = np.zeros((6, 3))
    directions = np.tile([0.0, 0.0, 1.0], (6, 1))
    t_min = np.zeros(6)
    t_max = np.full(6, 10.0)
    origins[1, 0] = np.nan          # non-finite origin
    origins[2, 2] = np.inf          # non-finite origin
    directions[3] = 0.0             # zero-length direction
    directions[4, 1] = np.nan       # non-finite direction
    t_max[5] = np.nan               # invalid interval
    return RayBatch(origins, directions, t_min, t_max)


class TestValidateRayBatch:
    def test_filter_removes_each_defect_class(self):
        rays = _batch_with_defects()
        filtered, report = validate_ray_batch(rays, mode="filter")
        assert len(filtered) == 1
        assert report.total == 6
        assert report.num_invalid == 5
        assert report.nonfinite_origins == 2
        assert report.nonfinite_directions == 1
        assert report.zero_directions == 1
        assert report.invalid_intervals == 1
        np.testing.assert_array_equal(
            report.kept, [True, False, False, False, False, False]
        )
        # The input batch is untouched.
        assert len(rays) == 6

    def test_clean_batch_passes_through(self):
        origins = np.zeros((3, 3))
        directions = np.tile([1.0, 0.0, 0.0], (3, 1))
        rays = RayBatch(origins, directions)
        filtered, report = validate_ray_batch(rays)
        assert report.ok
        assert filtered is rays
        assert report.summary() == "3 rays valid"

    def test_raise_mode(self):
        with pytest.raises(RayValidationError) as info:
            validate_ray_batch(_batch_with_defects(), mode="raise")
        assert "5/6 rays invalid" in str(info.value)
        assert exit_code_for(info.value) == EXIT_INPUT

    def test_report_mode_keeps_batch(self):
        rays = _batch_with_defects()
        same, report = validate_ray_batch(rays, mode="report")
        assert same is rays
        assert report.num_invalid == 5
        assert "zero directions: 1" in report.summary()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            validate_ray_batch(_batch_with_defects(), mode="bogus")

    def test_batch_method_shorthand(self):
        filtered, report = _batch_with_defects().validate()
        assert len(filtered) == 1
        assert not report.ok


class TestWorkloadWiring:
    def test_aogen_attaches_validation(self, small_scene, small_bvh):
        workload = generate_ao_workload(
            small_scene, small_bvh, width=8, height=8, spp=1, seed=5
        )
        assert workload.validation is not None
        assert workload.validation.ok  # generation never emits bad rays
        assert workload.validation.total == len(workload.rays)
        assert len(workload.pixel_index) == len(workload.rays)


class TestDegenerateRayTraversal:
    def test_nan_origin_ray_misses_without_crashing(self, small_bvh):
        ray = Ray((np.nan, 0.0, 0.0), (0.0, 0.0, 1.0), 0.0, 100.0)
        assert occlusion_any_hit(small_bvh, ray) is False

    def test_inf_origin_ray_misses_without_crashing(self, small_bvh):
        ray = Ray((np.inf, 1.0, 1.0), (0.0, 1.0, 0.0), 0.0, 100.0)
        assert occlusion_any_hit(small_bvh, ray) is False

    def test_nan_direction_ray_misses_without_crashing(self, small_bvh):
        ray = Ray((1.0, 1.0, 1.0), (np.nan, 0.0, 1.0), 0.0, 100.0)
        assert occlusion_any_hit(small_bvh, ray) is False
