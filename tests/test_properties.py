"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bvh import build_bvh, validate_bvh
from repro.core.hashing import GridSphericalHash, TwoPointHash, fold_hash, quantize
from repro.core.model import Equation1Inputs, estimate_avg_nodes, estimate_nodes_skipped
from repro.core.policies import LFUPolicy, LRUKPolicy, LRUPolicy
from repro.core.repacking import PartialWarpCollector
from repro.core.table import PredictorTable
from repro.geometry.aabb import AABB
from repro.geometry.intersect import ray_aabb_intersect, ray_triangle_intersect
from repro.geometry.morton import morton_decode_3d, morton_encode_3d
from repro.geometry.ray import Ray
from repro.geometry.triangle import TriangleMesh
from repro.geometry.vec import vec_cross, vec_dot, vec_length, vec_normalize
from repro.trace import occlusion_any_hit

finite = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
vec3 = st.tuples(finite, finite, finite)
unit_coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestVecProperties:
    @given(vec3, vec3)
    def test_cross_orthogonality(self, a, b):
        c = vec_cross(a, b)
        scale = max(1.0, vec_length(a) * vec_length(b))
        assert abs(vec_dot(a, c)) <= 1e-6 * scale * scale
        assert abs(vec_dot(b, c)) <= 1e-6 * scale * scale

    @given(vec3)
    def test_normalize_is_unit(self, v):
        if vec_length(v) < 1e-6:
            return
        assert math.isclose(vec_length(vec_normalize(v)), 1.0, rel_tol=1e-9)


class TestAABBProperties:
    @given(st.lists(vec3, min_size=1, max_size=12))
    def test_from_points_contains_all(self, points):
        box = AABB.from_points(points)
        for p in points:
            assert box.contains_point(p, eps=1e-9)

    @given(st.lists(vec3, min_size=1, max_size=8), st.lists(vec3, min_size=1, max_size=8))
    def test_union_contains_both(self, pa, pb):
        from repro.geometry.aabb import aabb_union

        a = AABB.from_points(pa)
        b = AABB.from_points(pb)
        u = aabb_union(a, b)
        assert u.contains_aabb(a, eps=1e-9)
        assert u.contains_aabb(b, eps=1e-9)

    @given(st.lists(vec3, min_size=2, max_size=10))
    def test_surface_area_monotone_under_growth(self, points):
        box = AABB.from_points(points[:1])
        prev = box.surface_area()
        for p in points[1:]:
            box.grow_point(p)
            area = box.surface_area()
            assert area >= prev - 1e-9
            prev = area


class TestMortonProperties:
    coord = st.integers(min_value=0, max_value=(1 << 21) - 1)

    @given(coord, coord, coord)
    def test_roundtrip(self, x, y, z):
        assert morton_decode_3d(morton_encode_3d(x, y, z)) == (x, y, z)

    @given(coord, coord, coord)
    def test_interleave_bound(self, x, y, z):
        assert morton_encode_3d(x, y, z) < (1 << 63)


class TestIntersectionProperties:
    @given(vec3, vec3, st.floats(min_value=0.1, max_value=50.0))
    def test_point_on_ray_inside_box_hits(self, origin, direction, t):
        if vec_length(direction) < 1e-6:
            return
        d = vec_normalize(direction)
        point = (origin[0] + t * d[0], origin[1] + t * d[1], origin[2] + t * d[2])
        lo = tuple(c - 1.0 for c in point)
        hi = tuple(c + 1.0 for c in point)
        inv = tuple(1.0 / x if x != 0 else math.inf for x in d)
        hit, t_entry = ray_aabb_intersect(
            origin[0], origin[1], origin[2], inv[0], inv[1], inv[2],
            0.0, math.inf, lo[0], lo[1], lo[2], hi[0], hi[1], hi[2],
        )
        assert hit
        assert t_entry <= t + 1e-6

    @given(unit_coord, unit_coord)
    def test_triangle_barycentric_interior_hits(self, u, v):
        # Map (u, v) into the triangle's interior.
        if u + v > 1.0:
            u, v = 1.0 - u, 1.0 - v
        u = 0.001 + 0.997 * u * 0.999
        v = 0.001 + (0.998 - u) * v
        point = (u, v, 0.0)
        t = ray_triangle_intersect(
            point[0], point[1], -1.0, 0.0, 0.0, 1.0, 0.0, 10.0,
            (0, 0, 0), (1, 0, 0), (0, 1, 0),
        )
        assert t is not None
        assert math.isclose(t, 1.0, rel_tol=1e-9)


class TestHashProperties:
    BOX = AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))

    @given(st.integers(min_value=0, max_value=(1 << 30) - 1),
           st.integers(min_value=1, max_value=30),
           st.integers(min_value=1, max_value=16))
    def test_fold_within_range(self, value, in_bits, out_bits):
        folded = fold_hash(value & ((1 << in_bits) - 1), in_bits, out_bits)
        assert 0 <= folded < (1 << out_bits)

    @given(st.floats(min_value=-2, max_value=2, allow_nan=False),
           st.integers(min_value=1, max_value=16))
    def test_quantize_within_range(self, x, bits):
        q = quantize(x, 0.0, 1.0, bits)
        assert 0 <= q < (1 << bits)

    @given(st.tuples(unit_coord, unit_coord, unit_coord), vec3)
    def test_grid_spherical_in_range(self, origin, direction):
        if vec_length(direction) < 1e-6:
            return
        hasher = GridSphericalHash(self.BOX, origin_bits=4, direction_bits=3)
        h = hasher.hash_ray(origin, vec_normalize(direction))
        assert 0 <= h < (1 << hasher.bits)

    @given(st.tuples(unit_coord, unit_coord, unit_coord), vec3)
    def test_two_point_in_range(self, origin, direction):
        if vec_length(direction) < 1e-6:
            return
        hasher = TwoPointHash(self.BOX, origin_bits=4, length_ratio=0.2)
        h = hasher.hash_ray(origin, vec_normalize(direction))
        assert 0 <= h < (1 << hasher.bits)


class TestPolicyProperties:
    ops = st.lists(
        st.tuples(st.sampled_from(["insert", "touch"]), st.integers(0, 20)),
        max_size=60,
    )

    @given(ops, st.integers(min_value=1, max_value=4))
    def test_lru_capacity_never_exceeded(self, operations, capacity):
        policy = LRUPolicy(capacity)
        for op, node in operations:
            if op == "insert":
                policy.insert(node)
            else:
                policy.touch(node)
            assert len(policy) <= capacity
            assert len(set(policy.nodes)) == len(policy.nodes)

    @given(ops, st.integers(min_value=1, max_value=4))
    def test_lfu_capacity_never_exceeded(self, operations, capacity):
        policy = LFUPolicy(capacity)
        for op, node in operations:
            if op == "insert":
                policy.insert(node)
            else:
                policy.touch(node)
            assert len(policy) <= capacity

    @given(ops, st.integers(min_value=1, max_value=4))
    def test_lruk_capacity_never_exceeded(self, operations, capacity):
        policy = LRUKPolicy(capacity, k=2)
        for op, node in operations:
            if op == "insert":
                policy.insert(node)
            else:
                policy.touch(node)
            assert len(policy) <= capacity


class TestTableProperties:
    @given(st.lists(st.tuples(st.integers(0, (1 << 12) - 1), st.integers(0, 500)),
                    max_size=80))
    def test_lookup_returns_what_was_stored(self, updates):
        table = PredictorTable(num_entries=16, ways=4, nodes_per_entry=2, hash_bits=12)
        inserted_nodes = set()
        for h, node in updates:
            table.update(h, node)
            inserted_nodes.add(node)
        for h, _ in updates:
            nodes = table.lookup(h)
            if nodes is not None:
                assert set(nodes) <= inserted_nodes

    @given(st.lists(st.integers(0, (1 << 12) - 1), max_size=64))
    def test_occupancy_bounded(self, hashes):
        table = PredictorTable(num_entries=8, ways=2, nodes_per_entry=1, hash_bits=12)
        for h in hashes:
            table.update(h, 1)
            assert 0.0 <= table.occupancy() <= 1.0


class TestCollectorProperties:
    @given(st.lists(st.lists(st.integers(0, 10_000), max_size=40), max_size=20))
    def test_no_ray_lost_or_duplicated(self, pushes):
        collector = PartialWarpCollector(warp_size=8, capacity=16, timeout_cycles=5)
        sent = []
        received = []
        for i, group in enumerate(pushes):
            tagged = [i * 100_000 + r for r in group]  # make ids unique
            sent.extend(tagged)
            for warp in collector.push(tagged):
                received.extend(warp)
        while len(collector):
            received.extend(collector.flush() or [])
        assert sorted(received) == sorted(sent)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=100))
    def test_emitted_warps_never_oversized(self, rays):
        collector = PartialWarpCollector(warp_size=8, capacity=16, timeout_cycles=5)
        for warp in collector.push(list(range(len(rays)))):
            assert len(warp) <= 8


class TestEquation1Properties:
    rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

    @given(rates, rates,
           st.floats(min_value=1.0, max_value=100.0),
           st.floats(min_value=0.0, max_value=4.0),
           st.floats(min_value=0.0, max_value=20.0))
    def test_identity_holds(self, p, v, n, k, m):
        if v > p:
            v, p = p, v
        inputs = Equation1Inputs(p=p, v=v, n=n, k=k, m=m)
        assert math.isclose(
            estimate_avg_nodes(inputs) + estimate_nodes_skipped(inputs), n,
            rel_tol=1e-12, abs_tol=1e-9,
        )

    @given(rates, st.floats(min_value=1.0, max_value=100.0),
           st.floats(min_value=0.0, max_value=4.0),
           st.floats(min_value=0.0, max_value=20.0))
    def test_higher_verified_never_worse(self, p, n, k, m):
        lo = Equation1Inputs(p=p, v=0.0, n=n, k=k, m=m)
        hi = Equation1Inputs(p=p, v=p, n=n, k=k, m=m)
        assert estimate_nodes_skipped(hi) >= estimate_nodes_skipped(lo)


class TestBVHTraversalProperty:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_soup_traversal_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 40))
        base = rng.uniform(-5, 5, (n, 3))
        mesh = TriangleMesh(
            base, base + rng.normal(0, 1, (n, 3)), base + rng.normal(0, 1, (n, 3))
        )
        bvh = build_bvh(mesh, method="median")
        validate_bvh(bvh)
        for _ in range(5):
            origin = tuple(rng.uniform(-8, 8, 3))
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            ray = Ray(origin, tuple(direction), 0.0, float(rng.uniform(1, 30)))
            expected = False
            for i in range(n):
                t = ray_triangle_intersect(
                    origin[0], origin[1], origin[2],
                    direction[0], direction[1], direction[2],
                    0.0, ray.t_max,
                    tuple(mesh.v0[i]), tuple(mesh.v1[i]), tuple(mesh.v2[i]),
                )
                if t is not None:
                    expected = True
                    break
            assert occlusion_any_hit(bvh, ray) == expected


class TestTraversalVariantsAgree:
    """All three occlusion kernels are interchangeable on random scenes."""

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_stack_trail_and_packets_agree(self, seed):
        from repro.geometry.ray import RayBatch
        from repro.trace import trace_occlusion_batch, trace_occlusion_packets
        from repro.trace.stackless import occlusion_any_hit_stackless

        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 30))
        base = rng.uniform(-4, 4, (n, 3))
        mesh = TriangleMesh(
            base, base + rng.normal(0, 0.8, (n, 3)), base + rng.normal(0, 0.8, (n, 3))
        )
        bvh = build_bvh(mesh, method="sah")

        m = 12
        origins = rng.uniform(-6, 6, (m, 3))
        directions = rng.normal(size=(m, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        rays = RayBatch(origins, directions, t_min=0.0,
                        t_max=rng.uniform(1.0, 25.0, m))

        stack = trace_occlusion_batch(bvh, rays)
        packets = trace_occlusion_packets(bvh, rays, packet_size=5)
        trail = np.asarray(
            [occlusion_any_hit_stackless(bvh, rays[i]) for i in range(m)]
        )
        assert np.array_equal(stack, packets)
        assert np.array_equal(stack, trail)
