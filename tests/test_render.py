"""Unit tests for the AO and GI renderers and image output."""

import numpy as np
import pytest

from repro.core import PredictorConfig
from repro.geometry.ray import Ray
from repro.render import (
    PredictedClosestHitTracer,
    render_ao,
    render_gi,
    tonemap,
    write_ppm,
)
from repro.trace import closest_hit

PC = PredictorConfig(origin_bits=3, direction_bits=2, go_up_level=2)


class TestImage:
    def test_tonemap_range(self):
        img = np.array([[-1.0, 0.0], [0.5, 2.0]])
        out = tonemap(img)
        assert out.dtype == np.uint8
        assert out[0, 0] == 0
        assert out[1, 1] == 255

    def test_tonemap_handles_nan(self):
        out = tonemap(np.array([[np.nan]]))
        assert out[0, 0] == 0

    def test_write_ppm_grayscale(self, tmp_path):
        path = tmp_path / "g.ppm"
        write_ppm(path, np.ones((4, 6)))
        data = path.read_bytes()
        assert data.startswith(b"P6\n6 4\n255\n")
        assert len(data) == len(b"P6\n6 4\n255\n") + 4 * 6 * 3

    def test_write_ppm_rgb(self, tmp_path):
        path = tmp_path / "c.ppm"
        write_ppm(path, np.zeros((2, 2, 3)))
        assert path.exists()

    def test_write_ppm_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "bad.ppm", np.zeros((2, 2, 4)))


class TestRenderAO:
    @pytest.fixture(scope="class")
    def render(self, small_scene, small_bvh):
        return render_ao(small_scene, small_bvh, width=16, height=16, spp=2, seed=3)

    def test_image_shape_and_range(self, render):
        assert render.image.shape == (16, 16)
        assert (render.image >= 0.0).all()
        assert (render.image <= 1.0).all()

    def test_occlusion_varies(self, render):
        # A cluttered room must produce spatial AO variation.
        assert render.image.std() > 0.01

    def test_visibility_matches_hits(self, render):
        wl = render.workload
        pixel = int(wl.pixel_index[0])
        mask = wl.pixel_index == pixel
        expected = 1.0 - render.hits[mask].mean()
        y, x = divmod(pixel, 16)
        assert render.image[y, x] == pytest.approx(expected)

    def test_stats_populated(self, render):
        assert render.stats.rays == len(render.workload)
        assert render.stats.node_fetches > 0

    def test_deterministic(self, small_scene, small_bvh):
        a = render_ao(small_scene, small_bvh, width=8, height=8, spp=2, seed=1)
        b = render_ao(small_scene, small_bvh, width=8, height=8, spp=2, seed=1)
        assert np.array_equal(a.image, b.image)


class TestPredictedClosestHit:
    def test_matches_plain_closest_hit(self, small_bvh, small_workload):
        """t-max trimming must never change the answer (Section 6.4)."""
        tracer = PredictedClosestHitTracer(small_bvh, PC)
        for i in range(0, len(small_workload), 5):
            ray = small_workload.rays[i]
            unbounded = Ray(ray.origin, ray.direction, 0.0, float("inf"))
            t_ref, tri_ref = closest_hit(small_bvh, unbounded)
            t, tri = tracer.trace(unbounded)
            assert (tri >= 0) == (tri_ref >= 0)
            if tri_ref >= 0:
                assert t == pytest.approx(t_ref, rel=1e-9)

    def test_trimming_engages_after_training(self, small_bvh, small_workload):
        tracer = PredictedClosestHitTracer(small_bvh, PC)
        for i in range(min(400, len(small_workload))):
            ray = small_workload.rays[i]
            tracer.trace(Ray(ray.origin, ray.direction, 0.0, float("inf")))
        assert tracer.predicted > 0
        assert tracer.trimmed > 0


class TestRenderGI:
    def test_shapes_and_determinism(self, small_scene, small_bvh):
        a = render_gi(small_scene, small_bvh, width=8, height=8, bounces=2, seed=2,
                      predictor_config=PC)
        b = render_gi(small_scene, small_bvh, width=8, height=8, bounces=2, seed=2,
                      predictor_config=PC)
        assert a.image.shape == (8, 8)
        assert np.array_equal(a.image, b.image)
        assert a.rays_traced == b.rays_traced

    def test_identical_image_with_and_without_predictor(self, small_scene, small_bvh):
        """Prediction trims work, not radiance."""
        with_pred = render_gi(small_scene, small_bvh, 8, 8, bounces=2, seed=4,
                              predictor_config=PC, use_predictor=True)
        without = render_gi(small_scene, small_bvh, 8, 8, bounces=2, seed=4,
                            use_predictor=False)
        assert np.allclose(with_pred.image, without.image)

    def test_radiance_nonnegative_and_bounded(self, small_scene, small_bvh):
        result = render_gi(small_scene, small_bvh, 8, 8, bounces=2, seed=5,
                           use_predictor=False)
        assert (result.image >= 0.0).all()
        assert (result.image <= 1.0 + 1e-9).all()  # sky == 1, albedo < 1

    def test_invalid_bounces(self, small_scene, small_bvh):
        with pytest.raises(ValueError):
            render_gi(small_scene, small_bvh, 4, 4, bounces=0)
