"""Unit tests for the cache and DRAM models."""

import pytest

from repro.gpu.cache import Cache
from repro.gpu.config import CacheConfig, DRAMConfig
from repro.gpu.dram import DRAM


class TestCacheConfig:
    def test_defaults(self):
        config = CacheConfig()
        assert config.num_lines == config.size_bytes // 128
        assert config.num_sets * config.ways == config.num_lines

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=64, line_bytes=128)

    def test_uneven_ways_raise(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=128 * 3, line_bytes=128, ways=2)


class TestCache:
    def make(self, size=1024, ways=2):
        return Cache(CacheConfig(size_bytes=size, line_bytes=128, ways=ways))

    def test_cold_miss_then_hit(self):
        cache = self.make()
        assert not cache.access(5)
        assert cache.access(5)
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1

    def test_lru_eviction(self):
        # 1024B/128B = 8 lines, 2-way -> 4 sets; lines 0, 4, 8 share set 0.
        cache = self.make()
        cache.access(0)
        cache.access(4)
        cache.access(8)  # evicts 0
        assert not cache.access(0)

    def test_lru_refresh_on_hit(self):
        cache = self.make()
        cache.access(0)
        cache.access(4)
        cache.access(0)  # refresh
        cache.access(8)  # evicts 4
        assert cache.access(0)
        assert not cache.access(4)

    def test_different_sets_no_conflict(self):
        cache = self.make()
        cache.access(0)
        cache.access(1)
        cache.access(2)
        assert cache.access(0)

    def test_probe_does_not_mutate(self):
        cache = self.make()
        cache.access(3)
        before = cache.stats.accesses
        assert cache.probe(3)
        assert not cache.probe(99)
        assert cache.stats.accesses == before

    def test_flush(self):
        cache = self.make()
        cache.access(1)
        cache.flush()
        assert not cache.probe(1)

    def test_line_of(self):
        cache = self.make()
        assert cache.line_of(0) == 0
        assert cache.line_of(127) == 0
        assert cache.line_of(128) == 1

    def test_hit_rate(self):
        cache = self.make()
        assert cache.stats.hit_rate == 0.0
        cache.access(0)
        cache.access(0)
        assert cache.stats.hit_rate == 0.5


class TestDRAM:
    def make(self, banks=4, latency=100, occupancy=20):
        return DRAM(DRAMConfig(num_banks=banks, latency=latency, bank_occupancy=occupancy))

    def test_idle_bank_latency(self):
        dram = self.make()
        assert dram.access(0, now=10) == 110

    def test_bank_queueing(self):
        dram = self.make()
        dram.access(0, now=0)       # bank 0 busy until 20
        assert dram.access(4, now=0) == 120  # same bank (4 % 4 == 0): queued
        assert dram.stats.stall_cycles == 20

    def test_different_banks_parallel(self):
        dram = self.make()
        assert dram.access(0, now=0) == 100
        assert dram.access(1, now=0) == 100  # bank 1, no queueing

    def test_bank_of(self):
        dram = self.make(banks=4)
        assert dram.bank_of(0) == 0
        assert dram.bank_of(5) == 1

    def test_reset_timing_keeps_stats(self):
        dram = self.make()
        dram.access(0, now=0)
        dram.reset_timing()
        assert dram.stats.accesses == 1
        assert dram.access(0, now=0) == 100  # no queueing after reset

    def test_bank_parallelism_bounds(self):
        dram = self.make(banks=4)
        for i in range(16):
            dram.access(i, now=0)
        par = dram.stats.bank_parallelism(4)
        assert 0.0 < par <= 4.0

    def test_avg_queue_delay(self):
        dram = self.make()
        dram.access(0, now=0)
        dram.access(4, now=0)
        assert dram.stats.avg_queue_delay == 10.0


class TestDRAMEdgeCases:
    def test_bank_parallelism_zero_span(self):
        dram = DRAM(DRAMConfig(num_banks=4))
        assert dram.stats.bank_parallelism(4) == 0.0

    def test_bank_parallelism_capped_at_banks(self):
        dram = DRAM(DRAMConfig(num_banks=2, latency=10, bank_occupancy=1000))
        dram.access(0, now=0)
        dram.access(1, now=0)
        assert dram.stats.bank_parallelism(2) <= 2.0

    def test_single_bank_serializes_everything(self):
        dram = DRAM(DRAMConfig(num_banks=1, latency=10, bank_occupancy=5))
        first = dram.access(0, now=0)
        second = dram.access(123, now=0)
        assert second == first + 5
