"""Unit tests for packet traversal and BVH serialization."""

import numpy as np
import pytest

from repro.bvh import validate_bvh
from repro.bvh.io import FORMAT_VERSION, load_bvh, save_bvh
from repro.trace import TraversalStats, trace_occlusion_batch
from repro.trace.packets import occlusion_packet, trace_occlusion_packets


class TestPackets:
    def test_matches_single_ray_traversal(self, small_bvh, small_workload):
        reference = trace_occlusion_batch(small_bvh, small_workload.rays)
        packets = trace_occlusion_packets(small_bvh, small_workload.rays, 32)
        assert np.array_equal(reference, packets)

    @pytest.mark.parametrize("size", [1, 7, 32, 64])
    def test_any_packet_size_correct(self, small_bvh, small_workload, size):
        rays = small_workload.rays.subset(np.arange(min(96, len(small_workload))))
        reference = trace_occlusion_batch(small_bvh, rays)
        assert np.array_equal(
            reference, trace_occlusion_packets(small_bvh, rays, size)
        )

    def test_packet_size_one_equals_single_fetches(self, small_bvh, small_workload):
        rays = small_workload.rays.subset(np.arange(48))
        single = TraversalStats()
        trace_occlusion_batch(small_bvh, rays, stats=single)
        packet = TraversalStats()
        trace_occlusion_packets(small_bvh, rays, 1, stats=packet)
        # A 1-ray packet visits exactly the nodes a lone ray visits.
        # (Near-first ordering differs, so compare totals loosely.)
        assert packet.node_fetches <= single.node_fetches * 1.5

    def test_coherent_packets_share_fetches(self, small_bvh, small_workload):
        """The packet amortization the related work exploits."""
        rays = small_workload.rays.subset(np.arange(128))
        single = TraversalStats()
        trace_occlusion_batch(small_bvh, rays, stats=single)
        packet = TraversalStats()
        trace_occlusion_packets(small_bvh, rays, 32, stats=packet)
        # AO rays from neighbouring pixels are coherent: a packet must
        # fetch fewer nodes in total...
        assert packet.node_fetches < single.node_fetches
        # ...while performing at least as many box tests (every active
        # member tests every visited node).
        assert packet.box_tests >= single.box_tests * 0.5

    def test_empty_packet(self, small_bvh, small_workload):
        out = occlusion_packet(small_bvh, small_workload.rays, [])
        assert out.shape == (0,)

    def test_invalid_packet_size(self, small_bvh, small_workload):
        with pytest.raises(ValueError):
            trace_occlusion_packets(small_bvh, small_workload.rays, 0)

    def test_stats_hits_match(self, small_bvh, small_workload):
        rays = small_workload.rays.subset(np.arange(64))
        stats = TraversalStats()
        hits = trace_occlusion_packets(small_bvh, rays, 16, stats=stats)
        assert stats.hits == int(hits.sum())
        assert stats.rays == 64


class TestBVHSerialization:
    def test_roundtrip_identical(self, small_bvh, tmp_path):
        path = tmp_path / "tree.npz"
        save_bvh(small_bvh, path)
        loaded = load_bvh(path)
        validate_bvh(loaded)
        assert np.array_equal(loaded.lo, small_bvh.lo)
        assert np.array_equal(loaded.left, small_bvh.left)
        assert np.array_equal(loaded.tri_indices, small_bvh.tri_indices)
        assert np.array_equal(loaded.mesh.v0, small_bvh.mesh.v0)

    def test_roundtrip_traversal_identical(self, small_bvh, small_workload, tmp_path):
        path = tmp_path / "tree.npz"
        save_bvh(small_bvh, path)
        loaded = load_bvh(path)
        rays = small_workload.rays.subset(np.arange(64))
        assert np.array_equal(
            trace_occlusion_batch(small_bvh, rays),
            trace_occlusion_batch(loaded, rays),
        )

    def test_rejects_non_bvh_npz(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(ValueError):
            load_bvh(path)

    def test_rejects_wrong_version(self, small_bvh, tmp_path):
        path = tmp_path / "tree.npz"
        save_bvh(small_bvh, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["format_version"] = np.int64(FORMAT_VERSION + 1)
        np.savez(path, **arrays)
        with pytest.raises(ValueError):
            load_bvh(path)
