"""Unit tests for the memory hierarchy composition (L1 -> L2 -> DRAM)."""


from repro.gpu.cache import Cache
from repro.gpu.config import CacheConfig, DRAMConfig, MemoryConfig
from repro.gpu.dram import DRAM
from repro.gpu.memory import MemoryHierarchy


def make(l1_kb=4, l2_kb=32, ports=2, dram_latency=120):
    return MemoryHierarchy(
        MemoryConfig(
            l1=CacheConfig(size_bytes=l1_kb * 1024),
            l2=CacheConfig(size_bytes=l2_kb * 1024, latency=30),
            dram=DRAMConfig(latency=dram_latency),
            l1_ports=ports,
        )
    )


class TestLatencyComposition:
    def test_cold_access_goes_to_dram(self):
        mem = make()
        result = mem.access_line(7, now=0)
        assert not result.l1_hit and not result.l2_hit
        # L2 latency + DRAM latency.
        assert result.ready_at == 30 + 120

    def test_second_access_hits_l1(self):
        mem = make()
        mem.access_line(7, now=0)
        result = mem.access_line(7, now=500)
        assert result.l1_hit
        assert result.ready_at == 501

    def test_l2_hit_after_l1_eviction(self):
        mem = make(l1_kb=4)
        lines_in_l1 = mem.config.l1.num_lines
        mem.access_line(0, now=0)
        # Thrash L1 set-by-set until line 0 is evicted from L1 only.
        for i in range(1, 20 * lines_in_l1):
            mem.access_line(i * mem.config.l1.num_sets, now=i)
        result = mem.access_line(0, now=10_000)
        assert not result.l1_hit
        # Depending on L2 capacity it may hit L2; it must not be faster
        # than an L2 access.
        assert result.ready_at >= 10_000 + 30 or result.l2_hit

    def test_shared_l2_between_hierarchies(self):
        config = MemoryConfig()
        l2 = Cache(config.l2)
        dram = DRAM(config.dram)
        a = MemoryHierarchy(config, l2=l2, dram=dram)
        b = MemoryHierarchy(config, l2=l2, dram=dram)
        a.access_line(5, now=0)
        result = b.access_line(5, now=0)
        assert not result.l1_hit  # private L1
        assert result.l2_hit  # shared L2


class TestPort:
    def test_port_serializes_same_cycle(self):
        mem = make(ports=1)
        first = mem.access_line(100, now=0)
        second = mem.access_line(101, now=0)
        # Second request issues one cycle later.
        assert second.ready_at >= first.ready_at
        assert mem.port_wait_cycles >= 1

    def test_wider_port_accepts_more_per_cycle(self):
        narrow = make(ports=1)
        wide = make(ports=4)
        for m in (narrow, wide):
            for i in range(4):
                m.access_line(200 + i * 1000, now=0)
        assert wide.port_wait_cycles < narrow.port_wait_cycles

    def test_port_counts(self):
        mem = make()
        for i in range(5):
            mem.access_line(i * 64, now=i * 10)
        assert mem.port_issues == 5

    def test_scheduler_slot_serializes(self):
        mem = make()
        a = mem.acquire_scheduler_slot(10)
        b = mem.acquire_scheduler_slot(10)
        c = mem.acquire_scheduler_slot(50)
        assert a == 10
        assert b == 11
        assert c == 50

    def test_line_of(self):
        mem = make()
        assert mem.line_of(0) == 0
        assert mem.line_of(129) == 1
