#!/usr/bin/env python3
"""Standalone entry point for the engine benchmark harness.

Thin wrapper over :mod:`repro.bench.harness` so the harness can be run
straight from a checkout without installing the package::

    PYTHONPATH=src python benchmarks/harness.py --quick --check

This is exactly ``python -m repro bench`` (the CLI subcommand and this
script share the same implementation), so the resilience flags work here
too: ``--resume``, ``--supervise``, ``--max-retries``, ``--unit-timeout``,
``--memory-budget``, ``--no-degrade``, and the chaos-testing flags
(``--chaos-rate``, ``--force-fail``).  See ``docs/BENCHMARKING.md`` for
the artifact schema and the CI regression gate, and ``docs/ROBUSTNESS.md``
for the supervisor and degradation-ladder semantics.
"""

from __future__ import annotations

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def main(argv=None) -> int:
    from repro.__main__ import main as repro_main

    args = list(sys.argv[1:] if argv is None else argv)
    return repro_main(["bench", *args])


if __name__ == "__main__":
    sys.exit(main())
