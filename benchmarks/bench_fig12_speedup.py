"""Figure 12: speedup of the proposed predictor over the baseline RT unit.

Paper: geometric-mean speedup of 26 % across seven scenes for unsorted
AO rays, with Morton-sorted rays benefiting less (similar rays in flight
simultaneously cannot train the predictor for one another).

Expected scaled shape: every scene speeds up; unsorted geomean in the
tens of percent; sorted geomean below unsorted.
"""

from repro.analysis.experiments import FULL_WORKLOAD, all_scene_codes
from repro.analysis.stats import geometric_mean
from repro.analysis.tables import format_table


def test_fig12_speedup(benchmark, ctx, report):
    def run():
        rows = []
        for code in all_scene_codes():
            unsorted = ctx.speedup(code, params=FULL_WORKLOAD)
            sorted_ = ctx.speedup(code, params=FULL_WORKLOAD, sort=True)
            rows.append((code, unsorted, sorted_))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    geo_unsorted = geometric_mean([r[1] for r in rows])
    geo_sorted = geometric_mean([r[2] for r in rows])
    table_rows = [list(r) for r in rows] + [["GEOMEAN", geo_unsorted, geo_sorted]]
    report(
        "fig12_speedup",
        format_table(
            ["Scene", "Speedup (unsorted)", "Speedup (sorted)"],
            table_rows,
            title="Figure 12 (scaled): predictor speedup over baseline RT unit",
        ),
    )

    # Paper shape: all scenes win, geomean is tens of percent, sorted
    # rays benefit less than unsorted.
    assert all(r[1] > 1.0 for r in rows), rows
    assert geo_unsorted > 1.10
    assert geo_sorted < geo_unsorted
