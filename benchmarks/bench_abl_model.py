"""Ablations of the timing model's own design choices (DESIGN.md).

The RT-unit model makes three modeling decisions the paper's hardware
implies but GPGPU-Sim provides implicitly; this benchmark quantifies
each so reviewers can see what carries the results:

* **MSHR merging + broadcast** (in-flight line requests shared within a
  warp) - disable by setting the coalesce window to zero;
* **per-thread progress vs warp barrier** - the barrier variant forces
  every iteration to wait for its slowest thread;
* **banked DRAM contention** - compare against a single-bank DRAM.

Expected shape: each mechanism matters (cycles change measurably), and
the baseline ordering (barrier slower, fewer banks slower) holds.
"""

from repro.analysis.experiments import SWEEP_WORKLOAD
from repro.analysis.tables import format_table
from repro.gpu.config import DRAMConfig, MemoryConfig, RTUnitConfig

SCENE = "SP"


def test_abl_timing_model(benchmark, ctx, report):
    def run():
        rows = []
        default = ctx.baseline(SCENE, SWEEP_WORKLOAD)
        rows.append(("default model", default.cycles, 1.0))

        no_window = ctx.baseline(
            SCENE, SWEEP_WORKLOAD, rt_unit=RTUnitConfig(coalesce_window=0)
        )
        rows.append(
            ("no coalesce window", no_window.cycles, default.cycles / no_window.cycles)
        )

        barrier = ctx.baseline(
            SCENE, SWEEP_WORKLOAD, rt_unit=RTUnitConfig(warp_barrier=True)
        )
        rows.append(("warp barrier", barrier.cycles, default.cycles / barrier.cycles))

        one_bank = ctx.baseline(
            SCENE, SWEEP_WORKLOAD,
            memory=MemoryConfig(dram=DRAMConfig(num_banks=1)),
        )
        rows.append(("1 DRAM bank", one_bank.cycles, default.cycles / one_bank.cycles))

        wide_port = ctx.baseline(
            SCENE, SWEEP_WORKLOAD, memory=MemoryConfig(l1_ports=8)
        )
        rows.append(("8 L1 ports", wide_port.cycles, default.cycles / wide_port.cycles))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "abl_timing_model",
        format_table(
            ["Model variant", "Cycles", "Speedup vs default"],
            [list(r) for r in rows],
            title="Ablation: timing-model mechanisms (baseline RT unit)",
        ),
    )

    by_name = {r[0]: r for r in rows}
    # The barrier can only slow execution; fewer banks can only hurt;
    # more ports can only help.
    assert by_name["warp barrier"][1] >= by_name["default model"][1]
    assert by_name["1 DRAM bank"][1] >= by_name["default model"][1]
    assert by_name["8 L1 ports"][1] <= by_name["default model"][1]
