"""Extension (paper Section 4.2 future work): combining hash functions.

The paper: "We leave the discovery of other hash functions, along with
more sophisticated hashing techniques such as combining multiple hash
functions ... to future work."  The tournament predictor runs Grid
Spherical and Two Point tables side by side (half capacity each) with a
chooser of saturating counters, at comparable total storage.

Expected shape: the tournament engages both components and lands in the
same performance band as the best single hash (it cannot dominate at
half capacity per component, but it must not collapse either) - the
interesting research output is the comparison data itself.
"""

from repro.analysis.experiments import (
    SWEEP_SCENES,
    SWEEP_WORKLOAD,
    scaled_predictor_config,
)
from repro.analysis.stats import geometric_mean
from repro.analysis.tables import format_table
from repro.core.adaptive import TournamentPredictor
from repro.gpu import GPUConfig
from repro.gpu.memory import MemoryHierarchy
from repro.gpu.rt_unit import RTUnit
from repro.gpu.simulator import split_rays_across_sms


def _run_tournament(ctx, code, config):
    """Timing run with a TournamentPredictor per SM."""
    bvh = ctx.bvh(code)
    rays = ctx.rays(code, SWEEP_WORKLOAD)
    gpu = GPUConfig(predictor=config)
    cycles = 0
    predicted = verified = total = 0
    for idx in split_rays_across_sms(rays, gpu.num_sms, gpu.rt_unit.warp_size):
        unit = RTUnit(
            bvh, gpu, MemoryHierarchy(gpu.memory),
            predictor=TournamentPredictor(bvh, config),
        )
        result = unit.run(rays.subset(idx))
        cycles = max(cycles, result.cycles)
        predicted += result.predicted
        verified += result.verified
        total += result.rays
    return cycles, predicted / total, verified / total


def test_ext_tournament_hashing(benchmark, ctx, report):
    config = scaled_predictor_config()
    two_point = config.with_overrides(hash_function="two_point")

    def run():
        rows = []
        for code in SWEEP_SCENES:
            base = ctx.baseline(code, SWEEP_WORKLOAD)
            grid = ctx.predicted(code, config, SWEEP_WORKLOAD)
            tp = ctx.predicted(code, two_point, SWEEP_WORKLOAD)
            t_cycles, t_pred, t_ver = _run_tournament(ctx, code, config)
            rows.append(
                (
                    code,
                    base.cycles / grid.cycles,
                    base.cycles / tp.cycles,
                    base.cycles / t_cycles,
                    t_pred,
                    t_ver,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    geo = [geometric_mean([r[i] for r in rows]) for i in (1, 2, 3)]
    report(
        "ext_tournament",
        format_table(
            ["Scene", "Grid Spherical", "Two Point", "Tournament",
             "Tourn. predicted", "Tourn. verified"],
            [list(r) for r in rows] + [["GEOMEAN"] + geo + ["", ""]],
            title="Extension: tournament hashing vs single hash functions",
        ),
    )

    geo_grid, geo_tp, geo_tournament = geo
    best_single = max(geo_grid, geo_tp)
    # The tournament engages and stays in the single-hash band.
    assert all(r[4] > 0.1 for r in rows)
    assert geo_tournament > 0.85 * best_single
    assert geo_tournament > 1.0
