"""Table 7: placement-policy comparison (direct-mapped .. 8-way).

Paper: 4-way set-associative wins (25.8 % speedup, 95.5 % predicted,
24.6 % verified); direct-mapped loses badly (15.9 %, 58.7 % predicted)
because conflict evictions destroy entries before they can be reused.

Expected scaled shape: direct-mapped predicts the fewest rays; higher
associativity raises the predicted rate monotonically-ish, with 4-way
and 8-way close together.
"""

from repro.analysis.experiments import (
    SWEEP_SCENES,
    SWEEP_WORKLOAD,
    scaled_predictor_config,
    sweep_config_metrics,
)
from repro.analysis.stats import geometric_mean
from repro.analysis.tables import format_table

WAYS = [1, 2, 4, 8]


def test_tab07_placement_policy(benchmark, ctx, report):
    def run():
        configs = {ways: scaled_predictor_config(ways=ways) for ways in WAYS}
        metrics = sweep_config_metrics(
            list(configs.values()), SWEEP_SCENES, SWEEP_WORKLOAD, ctx=ctx
        )
        rows = []
        for ways, config in configs.items():
            per_scene = [metrics[(config, code)] for code in SWEEP_SCENES]
            rows.append(
                (
                    {1: "Direct-mapped"}.get(ways, f"{ways}-way"),
                    geometric_mean([m.speedup for m in per_scene]),
                    sum(m.predicted_rate for m in per_scene) / len(per_scene),
                    sum(m.verified_rate for m in per_scene) / len(per_scene),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "tab07_placement",
        format_table(
            ["Policy", "Speedup", "Predicted", "Verified"],
            [list(r) for r in rows],
            title="Table 7 (scaled): placement policies",
        ),
    )

    by_ways = {w: r for w, r in zip(WAYS, rows)}
    # Direct-mapped predicts the fewest rays (conflict evictions).
    assert by_ways[1][2] == min(r[2] for r in rows)
    # 4-way predicts at least as much as 2-way; 8-way ~ 4-way.
    assert by_ways[4][2] >= by_ways[2][2] - 0.02
    assert abs(by_ways[8][2] - by_ways[4][2]) < 0.10
