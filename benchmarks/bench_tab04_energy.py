"""Table 4: per-ray energy breakdown, baseline vs predictor.

Paper: 296 nJ/ray baseline, dominated by the base GPU (DRAM); the
predictor adds tiny table/repacking energy (+0.07 nJ) but saves 20
nJ/ray overall by finishing sooner (~7 % energy saving).

Expected scaled shape: base GPU dominates both columns; the predictor's
own structures are a sub-percent overhead; total energy drops when the
predictor wins cycles.
"""

from repro.analysis.experiments import (
    FULL_WORKLOAD,
    all_scene_codes,
    scaled_predictor_config,
)
from repro.analysis.tables import format_table
from repro.energy import EnergyModel


def test_tab04_energy_breakdown(benchmark, ctx, report):
    config = scaled_predictor_config()
    model = EnergyModel(config)

    def run():
        base_parts = None
        pred_parts = None
        for code in all_scene_codes():
            b = model.breakdown(ctx.baseline(code, FULL_WORKLOAD)).as_dict()
            p = model.breakdown(ctx.predicted(code, params=FULL_WORKLOAD)).as_dict()
            if base_parts is None:
                base_parts = {k: 0.0 for k in b}
                pred_parts = {k: 0.0 for k in p}
            for k in b:
                base_parts[k] += b[k] / len(all_scene_codes())
                pred_parts[k] += p[k] / len(all_scene_codes())
        return base_parts, pred_parts

    base_parts, pred_parts = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, base_parts[name], pred_parts[name], pred_parts[name] - base_parts[name]]
        for name in base_parts
    ]
    report(
        "tab04_energy",
        format_table(
            ["Component", "Baseline nJ/ray", "Predictor nJ/ray", "Change"],
            rows,
            title="Table 4 (scaled): energy breakdown, averaged over scenes",
            float_format="{:.4f}",
        ),
    )

    # Paper shape: base GPU dominates; predictor structures are tiny;
    # the net change is a saving.
    assert base_parts["Base GPU"] > 0.8 * base_parts["Total"]
    overhead = pred_parts["Predictor table"] + pred_parts["Warp repacking"]
    assert overhead < 0.02 * pred_parts["Total"]
    assert pred_parts["Total"] < base_parts["Total"]
