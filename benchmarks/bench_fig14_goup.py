"""Figure 14: the Go Up Level tradeoff.

Paper: raising the Go Up Level raises the verified rate monotonically
(slightly different leaves share ancestors) but memory savings peak at a
small level and then fall (each prediction traverses a larger subtree);
level 3 performs best overall.

Expected scaled shape: verified rate non-decreasing in the level;
memory savings rise then fall (an interior peak, not at the extremes).
"""

from repro.analysis.experiments import (
    SWEEP_SCENES,
    SWEEP_WORKLOAD,
    scaled_predictor_config,
)
from repro.analysis.tables import format_table

LEVELS = [0, 1, 2, 3, 4, 5]


def test_fig14_go_up_level(benchmark, ctx, report):
    def run():
        rows = []
        for level in LEVELS:
            config = scaled_predictor_config(go_up_level=level)
            verified, savings, speedups = [], [], []
            for code in SWEEP_SCENES:
                base = ctx.baseline(code, SWEEP_WORKLOAD)
                pred = ctx.predicted(code, config, SWEEP_WORKLOAD)
                verified.append(pred.verified_rate)
                savings.append(1.0 - pred.total_accesses / base.total_accesses)
                speedups.append(base.cycles / pred.cycles)
            n = len(SWEEP_SCENES)
            rows.append(
                (level, sum(verified) / n, sum(savings) / n, sum(speedups) / n)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig14_goup",
        format_table(
            ["Go Up Level", "Verified rate", "Memory savings", "Speedup"],
            [list(r) for r in rows],
            title="Figure 14 (scaled): Go Up Level tradeoff",
        ),
    )

    verified = [r[1] for r in rows]
    savings = [r[2] for r in rows]
    # Verified rate grows with the level (allow small noise).
    assert verified[-1] > verified[0]
    for a, b in zip(verified, verified[1:]):
        assert b >= a - 0.03
    # Memory savings peak at an interior level, not at the maximum.
    best = savings.index(max(savings))
    assert best < len(LEVELS) - 1
    assert max(savings) > savings[-1]
