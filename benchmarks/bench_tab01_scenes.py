"""Table 1: benchmark scene summary.

Paper: seven scenes, 75 K - 1.4 M triangles, BVH depth 22-27, ~4 M AO
rays each.  Scaled reproduction: the same seven scene *identities* at
procedural stand-in sizes, with the same relative ordering (BI and CK
largest) and the Section 5.2 AO ray recipe.
"""

from repro.analysis.experiments import FULL_WORKLOAD, all_scene_codes
from repro.analysis.tables import format_table
from repro.bvh.stats import compute_stats


def test_tab01_scene_summary(benchmark, ctx, report):
    def run():
        rows = []
        for code in all_scene_codes():
            scene = ctx.scene(code)
            stats = compute_stats(ctx.bvh(code))
            workload = ctx.workload(code, FULL_WORKLOAD)
            rows.append(
                (
                    scene.name,
                    code,
                    scene.num_triangles,
                    stats.max_depth,
                    len(workload),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "tab01_scenes",
        format_table(
            ["Scene", "Code", "Triangles", "BVH Tree Depth", "AO Rays Traced"],
            rows,
            title="Table 1 (scaled): benchmark scenes",
        ),
    )

    codes = [r[1] for r in rows]
    assert codes == ["SB", "SP", "LE", "LR", "FR", "BI", "CK"]
    tris = {r[1]: r[2] for r in rows}
    # Relative sizes follow the paper: Bistro and Kitchen are the largest.
    assert tris["BI"] == max(tris.values())
    assert all(r[3] >= 10 for r in rows)  # non-trivial trees
    assert all(r[4] > 10_000 for r in rows)  # tens of thousands of AO rays
