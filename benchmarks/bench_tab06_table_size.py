"""Table 6: speedup vs predictor-table geometry (entries x nodes/entry).

Paper: 1024 entries with 1 node/entry is optimal (25.8 %); doubling
entries or nodes/entry brings no gain because extra capacity dilutes the
constructive aliasing and extra nodes cost k*m verification work.

Expected scaled shape: speedups vary only modestly across geometries (a
flat-ish plateau, as in the paper's 23.4-25.8 % spread), and the
scaled-optimal geometry beats the smallest table.  At our ray density
the optimum shifts to 2 nodes/entry (documented in EXPERIMENTS.md).
"""

from repro.analysis.experiments import (
    SWEEP_SCENES,
    SWEEP_WORKLOAD,
    scaled_predictor_config,
    sweep_config_metrics,
)
from repro.analysis.stats import geometric_mean
from repro.analysis.tables import format_table

ENTRIES = [512, 1024, 2048]
NODES = [1, 2, 4]


def test_tab06_table_size(benchmark, ctx, report):
    def run():
        configs = {
            (entries, nodes): scaled_predictor_config(
                num_entries=entries, nodes_per_entry=nodes
            )
            for entries in ENTRIES
            for nodes in NODES
        }
        metrics = sweep_config_metrics(
            list(configs.values()), SWEEP_SCENES, SWEEP_WORKLOAD, ctx=ctx
        )
        return {
            key: geometric_mean(
                [metrics[(config, code)].speedup for code in SWEEP_SCENES]
            )
            for key, config in configs.items()
        }

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [entries] + [grid[(entries, nodes)] for nodes in NODES]
        for entries in ENTRIES
    ]
    report(
        "tab06_table_size",
        format_table(
            ["Entries \\ Nodes"] + [str(n) for n in NODES],
            rows,
            title="Table 6 (scaled): geomean speedup vs table geometry",
        ),
    )

    values = list(grid.values())
    # A plateau, not a cliff: every geometry is within ~25 % of the best.
    assert max(values) - min(values) < 0.25
    assert max(values) > 1.0  # the best geometry wins over baseline
