"""Figure 17: latency and bandwidth sensitivity.

Paper: raising intersection-test latency steadily erodes the speedup
(latency matters, after Guthe); predictor lookup latency and bandwidth
barely matter - one lookup per ray vs many intersection tests.

Expected scaled shape: the predictor's speedup persists across all
intersection latencies (our model shows a mild *rise* where the paper
shows a fall - a documented modeling divergence, see EXPERIMENTS.md);
sweeping predictor lookup latency or port count changes the speedup
only marginally, exactly as in the paper.
"""

from repro.analysis.experiments import (
    SWEEP_SCENES,
    SWEEP_WORKLOAD,
    scaled_predictor_config,
)
from repro.analysis.stats import geometric_mean
from repro.analysis.tables import format_table
from repro.gpu.config import RTUnitConfig

INTERSECT_LATENCIES = [1, 2, 4, 8, 16]
LOOKUP_LATENCIES = [1, 2, 4, 8]
PORTS = [1, 2, 4, 8]


def _geo(ctx, predictor, rt_unit=None):
    overrides = {"rt_unit": rt_unit} if rt_unit is not None else {}
    return geometric_mean(
        [
            ctx.baseline(code, SWEEP_WORKLOAD, **overrides).cycles
            / ctx.predicted(code, predictor, SWEEP_WORKLOAD, **overrides).cycles
            for code in SWEEP_SCENES
        ]
    )


def test_fig17_intersection_latency(benchmark, ctx, report):
    predictor = scaled_predictor_config()

    def run():
        rows = []
        for latency in INTERSECT_LATENCIES:
            rt = RTUnitConfig(box_test_latency=latency, tri_test_latency=latency)
            rows.append((latency, _geo(ctx, predictor, rt)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig17_intersection_latency",
        format_table(
            ["Intersection latency (cycles)", "Predictor speedup"],
            [list(r) for r in rows],
            title="Figure 17 (scaled): intersection-test latency sensitivity",
        ),
    )
    speeds = [r[1] for r in rows]
    # The predictor's win is robust across intersection latencies.  Note
    # a modeling divergence documented in EXPERIMENTS.md: the paper's
    # speedup *falls* with intersection latency, while in our model it
    # rises mildly (the predictor also eliminates the tests themselves,
    # which higher per-test cost makes more valuable).
    assert min(speeds) > 1.0
    assert max(speeds) - min(speeds) < 0.3


def test_fig17_predictor_latency_and_bandwidth(benchmark, ctx, report):
    def run():
        latency_rows = [
            (lat, _geo(ctx, scaled_predictor_config(lookup_latency=lat)))
            for lat in LOOKUP_LATENCIES
        ]
        port_rows = [
            (ports, _geo(ctx, scaled_predictor_config(ports=ports)))
            for ports in PORTS
        ]
        return latency_rows, port_rows

    latency_rows, port_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig17_predictor_latency",
        format_table(
            ["Parameter", "Value", "Predictor speedup"],
            [["lookup latency", v, s] for v, s in latency_rows]
            + [["ports", v, s] for v, s in port_rows],
            title="Figure 17 (scaled): predictor latency/bandwidth sensitivity",
        ),
    )

    lat_speeds = [s for _, s in latency_rows]
    port_speeds = [s for _, s in port_rows]
    # Paper: the predictor is insensitive to its own latency/bandwidth.
    assert max(lat_speeds) - min(lat_speeds) < 0.08
    assert max(port_speeds) - min(port_speeds) < 0.08
