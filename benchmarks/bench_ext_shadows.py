"""Extension: the predictor on shadow rays.

The paper designs for *occlusion rays* generally - "AO and shadow rays"
(Section 2.2) - but evaluates AO only.  This extension checks the
generality claim: hybrid-rendering shadow rays (one ray per pixel toward
a ceiling point light) run through the same predictor.

Expected shape: the predictor trains and verifies on shadow rays and
does not slow the workload; shadow rays are more coherent than AO rays
(one light direction per surface region), so predicted rates stay high.
"""

from repro.analysis.experiments import (
    SWEEP_SCENES,
    scaled_gpu_config,
    scaled_predictor_config,
)
from repro.analysis.stats import geometric_mean
from repro.analysis.tables import format_table
from repro.gpu import simulate_workload
from repro.rays.shadows import generate_shadow_workload


def test_ext_shadow_rays(benchmark, ctx, report):
    predictor = scaled_predictor_config()

    def run():
        rows = []
        for code in SWEEP_SCENES:
            scene = ctx.scene(code)
            bvh = ctx.bvh(code)
            workload = generate_shadow_workload(scene, bvh, width=64, height=64)
            base = simulate_workload(bvh, workload.rays, scaled_gpu_config())
            pred = simulate_workload(
                bvh, workload.rays, scaled_gpu_config(predictor)
            )
            rows.append(
                (
                    code,
                    len(workload),
                    base.cycles / pred.cycles,
                    pred.predicted_rate,
                    pred.verified_rate,
                    pred.hit_rate,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    geo = geometric_mean([r[2] for r in rows])
    report(
        "ext_shadows",
        format_table(
            ["Scene", "Shadow rays", "Speedup", "Predicted", "Verified", "Shadowed"],
            [list(r) for r in rows] + [["GEOMEAN", "", geo, "", "", ""]],
            title="Extension: predictor on hybrid-rendering shadow rays",
        ),
    )

    # Generality: the predictor engages on shadow rays (one ray per
    # pixel trains far less than 8-spp AO, so rates are workload-bound)
    # and does not slow the workload down on geomean.
    assert all(r[3] > 0.0 for r in rows), rows
    assert any(r[3] > 0.15 for r in rows), rows
    assert any(r[4] > 0.05 for r in rows), rows
    assert geo > 0.97
