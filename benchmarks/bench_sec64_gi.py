"""Section 6.4: the global-illumination extension.

Paper: for closest-hit rays the predictor trims the ray's maximum
length before traversal rather than skipping it; three-bounce GI sees a
modest 4 % average speedup.

Expected scaled shape: the tracer engages (a third of rays get trimmed)
and produces a bit-identical image, but at our scaled tree depths
(n ~ 17 nodes/ray vs the paper's ~28) the up-front candidate search
costs about as much as the trim saves: net access change ~0 (measured
-2 %, paper +4 %).  The *mechanism* - identical results with trimming
engaged - is the reproduced claim; EXPERIMENTS.md discusses the scale
effect.
"""

import numpy as np

from repro.analysis.experiments import SWEEP_SCENES, scaled_predictor_config
from repro.analysis.tables import format_table
from repro.render import render_gi

WIDTH = HEIGHT = 24
BOUNCES = 3


def test_sec64_gi_extension(benchmark, ctx, report):
    # Closest-hit trimming wants the cheapest possible candidate search:
    # leaf-adjacent predictions, one node per entry.
    predictor = scaled_predictor_config(go_up_level=1, nodes_per_entry=1)

    def run():
        rows = []
        for code in SWEEP_SCENES:
            scene = ctx.scene(code)
            bvh = ctx.bvh(code)
            plain = render_gi(
                scene, bvh, WIDTH, HEIGHT, bounces=BOUNCES, seed=3,
                use_predictor=False,
            )
            predicted = render_gi(
                scene, bvh, WIDTH, HEIGHT, bounces=BOUNCES, seed=3,
                predictor_config=predictor, use_predictor=True,
            )
            assert np.allclose(plain.image, predicted.image), code
            reduction = 1.0 - (
                predicted.stats.total_accesses / plain.stats.total_accesses
            )
            rows.append(
                (
                    code,
                    plain.stats.total_accesses,
                    predicted.stats.total_accesses,
                    reduction,
                    predicted.trimmed / max(1, predicted.rays_traced),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    avg_reduction = sum(r[3] for r in rows) / len(rows)
    report(
        "sec64_gi",
        format_table(
            ["Scene", "Plain accesses", "Predicted accesses",
             "Access reduction", "Trimmed rays"],
            [list(r) for r in rows]
            + [["AVERAGE", "", "", avg_reduction, ""]],
            title="Section 6.4 (scaled): GI with predicted t-max trimming",
        ),
    )

    # Paper shape: a modest but real gain (4 % speedup there); here the
    # trimming must engage and on average not increase traversal work
    # beyond a small overhead.
    assert any(r[4] > 0.0 for r in rows)
    assert avg_reduction > -0.05
