"""Shared fixtures for the benchmark harness.

One memoizing :class:`ExperimentContext` serves the whole session, so a
scene's baseline simulation is executed once even though several
tables/figures consume it.  Each benchmark prints its regenerated
table (visible with ``pytest -s``) and writes it to ``results/``.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import ExperimentContext

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext()


@pytest.fixture(scope="session")
def report():
    """Writer: ``report(artifact_id, text)`` persists and echoes a table."""

    os.makedirs(RESULTS_DIR, exist_ok=True)

    def write(artifact_id: str, text: str) -> None:
        path = os.path.join(RESULTS_DIR, f"{artifact_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[written to {os.path.relpath(path)}]")

    return write
