"""Figure 11: correlating the simulated RT unit against hardware.

Paper: rays/s of the GPGPU-Sim RT unit vs an NVIDIA RTX 2080 Ti over
seven scenes x {primary, reflection} rays; correlation coefficient 0.9.

Substitution (no RT-core hardware here): a closed-form throughput proxy
driven only by scene/BVH statistics plays the hardware's role - see
``repro.analysis.correlate``.  Expected shape: strong positive
correlation (>= 0.6) between simulator rays/cycle and the proxy across
the same 14 points.
"""

from repro.analysis.correlate import run_correlation
from repro.analysis.experiments import all_scene_codes
from repro.analysis.tables import format_table


def test_fig11_correlation(benchmark, ctx, report):
    def run():
        return run_correlation(ctx, all_scene_codes(), width=48, height=48)

    points, correlation = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{p.scene}/{p.ray_type}", p.simulated_rays_per_cycle, p.proxy_rays_per_cycle]
        for p in points
    ]
    report(
        "fig11_correlation",
        format_table(
            ["Scene/rays", "Simulated rays/cycle", "Proxy rays/cycle"],
            rows,
            title=(
                "Figure 11 (scaled): simulator vs hardware-proxy throughput; "
                f"Pearson r = {correlation:.3f}"
            ),
            float_format="{:.5f}",
        ),
    )

    assert len(points) == 14  # 7 scenes x 2 ray types
    assert correlation > 0.6  # paper: 0.9 against real hardware
    # Reflection rays are slower than primary rays on every scene.
    by_scene = {}
    for p in points:
        by_scene.setdefault(p.scene, {})[p.ray_type] = p.simulated_rays_per_cycle
    slower = sum(
        1 for d in by_scene.values() if d["reflection"] < d["primary"]
    )
    assert slower >= 5
