"""Figure 15: warp repacking variants.

Paper: the Default predictor (no repacking) sometimes *slows scenes
down* - elongated mispredicted threads delay whole warps; Repack
recovers +17 % geomean over Default; four additional warps (Repack 4)
add another +7 %.

Expected scaled shape: Repack+extra-warps > Default on geomean, and
Repack+extra > Repack; Default hovers near baseline.
"""

from repro.analysis.experiments import (
    FULL_WORKLOAD,
    all_scene_codes,
    scaled_predictor_config,
)
from repro.analysis.stats import geometric_mean
from repro.analysis.tables import format_table


def test_fig15_repacking(benchmark, ctx, report):
    default_cfg = scaled_predictor_config(repack=False, extra_warps=0)
    repack_cfg = scaled_predictor_config(extra_warps=0)
    repack4_cfg = scaled_predictor_config(extra_warps=4)

    def run():
        rows = []
        for code in all_scene_codes():
            base = ctx.baseline(code, FULL_WORKLOAD)
            default = ctx.predicted(code, default_cfg, FULL_WORKLOAD)
            repack = ctx.predicted(code, repack_cfg, FULL_WORKLOAD)
            repack4 = ctx.predicted(code, repack4_cfg, FULL_WORKLOAD)
            rows.append(
                (
                    code,
                    base.cycles / default.cycles,
                    base.cycles / repack.cycles,
                    base.cycles / repack4.cycles,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    geo = [geometric_mean([r[i] for r in rows]) for i in (1, 2, 3)]
    report(
        "fig15_repacking",
        format_table(
            ["Scene", "Default", "Repack", "Repack 4"],
            [list(r) for r in rows] + [["GEOMEAN"] + geo],
            title="Figure 15 (scaled): repacking variants, speedup over baseline",
        ),
    )

    geo_default, geo_repack, geo_repack4 = geo
    # Paper ordering: additional warps give the most; repacking with
    # extra capacity beats the Default predictor.
    assert geo_repack4 > geo_repack
    assert geo_repack4 > geo_default
    assert geo_repack4 > 1.10
