"""Section 6.2.5: scaling the number of SMs.

Paper: the predictor table is per-SM, so more SMs segregate rays and
reduce training opportunities - yet 90 % of the savings survive up to
six SMs.

Expected scaled shape: memory savings per-SM-count non-increasing, with
a large fraction retained at 4-6 SMs.
"""

from repro.analysis.experiments import (
    SWEEP_SCENES,
    SWEEP_WORKLOAD,
    scaled_predictor_config,
)
from repro.analysis.tables import format_table

SM_COUNTS = [1, 2, 4, 6]


def test_sec625_multi_sm(benchmark, ctx, report):
    predictor = scaled_predictor_config()

    def run():
        rows = []
        for sms in SM_COUNTS:
            savings, verified = [], []
            for code in SWEEP_SCENES:
                base = ctx.baseline(code, SWEEP_WORKLOAD, num_sms=sms)
                pred = ctx.predicted(code, predictor, SWEEP_WORKLOAD, num_sms=sms)
                savings.append(1.0 - pred.total_accesses / base.total_accesses)
                verified.append(pred.verified_rate)
            n = len(SWEEP_SCENES)
            rows.append((sms, sum(savings) / n, sum(verified) / n))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "sec625_multism",
        format_table(
            ["SMs", "Memory savings", "Verified rate"],
            [list(r) for r in rows],
            title="Section 6.2.5 (scaled): per-SM predictors vs SM count",
        ),
    )

    savings = {r[0]: r[1] for r in rows}
    # More SMs never help the per-SM predictor (segregated rays).
    assert savings[6] <= savings[1] + 0.01
    # A majority of the single-SM savings survives at six SMs.
    if savings[1] > 0.02:
        assert savings[6] > 0.4 * savings[1]
