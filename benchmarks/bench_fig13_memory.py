"""Figure 13: memory accesses and predictor overheads vs the baseline.

Paper: the predictor adds ~9 % extra accesses (5.5 % wasteful
mispredictions) but removes more, netting a 13 % reduction (12 % of
interior-node accesses, 2 % of primitive accesses).

Expected scaled shape: net accesses drop on every scene; a visible but
smaller misprediction overhead component.
"""

from repro.analysis.experiments import FULL_WORKLOAD, all_scene_codes
from repro.analysis.tables import format_table


def test_fig13_memory_accesses(benchmark, ctx, report):
    def run():
        rows = []
        for code in all_scene_codes():
            base = ctx.baseline(code, FULL_WORKLOAD)
            pred = ctx.predicted(code, params=FULL_WORKLOAD)
            rows.append(
                (
                    code,
                    base.total_accesses,
                    pred.total_accesses,
                    1.0 - pred.total_accesses / base.total_accesses,
                    pred.misprediction_accesses / base.total_accesses,
                    1.0 - pred.node_fetches / base.node_fetches,
                    1.0 - pred.tri_fetches / base.tri_fetches,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    avg_net = sum(r[3] for r in rows) / len(rows)
    avg_overhead = sum(r[4] for r in rows) / len(rows)
    report(
        "fig13_memory",
        format_table(
            [
                "Scene", "Baseline accesses", "Predictor accesses",
                "Net reduction", "Mispred overhead", "Node reduction",
                "Tri reduction",
            ],
            [list(r) for r in rows]
            + [["AVERAGE", "", "", avg_net, avg_overhead, "", ""]],
            title="Figure 13 (scaled): memory accesses vs baseline RT unit",
        ),
    )

    # Paper shape: net reduction positive on average (paper: 13 %), with
    # a real but smaller misprediction overhead (paper: 5.5 %).
    assert avg_net > 0.05
    assert 0.0 < avg_overhead < avg_net + 0.15
    assert sum(1 for r in rows if r[3] > 0) >= 6  # nearly every scene wins
