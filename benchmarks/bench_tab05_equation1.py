"""Table 5: Equation 1's estimate vs the measured node-access reduction.

Paper: with measured averages (v=0.246, n=28.4, p=0.955, k=1, m=2.81),
Equation 1 estimates 4.30 nodes skipped per ray against a measured 3.73
- the analytic model tracks the simulation.

Expected scaled shape: the estimate and the measurement agree in sign
and within a modest relative error, per scene and on average.
"""

from repro.analysis.experiments import (
    FULL_WORKLOAD,
    all_scene_codes,
    scaled_predictor_config,
)
from repro.analysis.tables import format_table
from repro.core import simulate_predictor
from repro.core.model import estimate_nodes_skipped, inputs_from_simulation


def test_tab05_equation1(benchmark, ctx, report):
    config = scaled_predictor_config()

    def run():
        rows = []
        for code in all_scene_codes():
            bvh = ctx.bvh(code)
            rays = ctx.rays(code, FULL_WORKLOAD)
            result = simulate_predictor(bvh, rays, config, keep_outcomes=True)
            inputs = inputs_from_simulation(result)
            rows.append(
                (
                    code,
                    inputs.v,
                    inputs.n,
                    inputs.p,
                    inputs.k,
                    inputs.m,
                    estimate_nodes_skipped(inputs),
                    result.nodes_skipped_per_ray(),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "tab05_equation1",
        format_table(
            ["Scene", "v", "n", "p", "k", "m", "Estimated", "Actual"],
            [list(r) for r in rows],
            title="Table 5 (scaled): Equation 1 estimated vs measured "
            "nodes skipped per ray",
        ),
    )

    est_avg = sum(r[6] for r in rows) / len(rows)
    act_avg = sum(r[7] for r in rows) / len(rows)
    # Paper: 4.298 estimated vs 3.726 actual (~15 % apart, same sign).
    assert est_avg > 0 and act_avg > 0
    assert abs(est_avg - act_avg) < 0.6 * max(est_avg, act_avg)
    for r in rows:
        assert (r[6] > 0) == (r[7] > 0) or abs(r[6] - r[7]) < 1.0, r
