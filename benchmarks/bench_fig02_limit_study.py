"""Figure 2 / Section 6.3: the limit study.

Paper: the realistic predictor verifies 27 % of rays (13 % memory
savings); with oracle lookup (OL) into the same 5.5 KB table, verified
rays rise to 38 % and savings nearly double (24 %); an unbounded table
(oracle training, OT) reaches ~58 % savings; immediate updates (OU) add
a sliver more.

Expected scaled shape: verified(PROPOSED) < verified(OL) <= verified(OT)
<= verified(OU); memory savings ordered the same way, with OL well above
the proposal.
"""

import numpy as np

from repro.analysis.experiments import (
    SWEEP_WORKLOAD,
    all_scene_codes,
    scaled_predictor_config,
)
from repro.analysis.tables import format_table
from repro.core import OracleKind, run_limit_study

#: Rays per scene for the oracle runs (all-hits traversals are costly).
_ORACLE_RAYS = 4000


def test_fig02_limit_study(benchmark, ctx, report):
    config = scaled_predictor_config()

    def run():
        per_kind = {kind: {"verified": [], "savings": []} for kind in OracleKind}
        for code in all_scene_codes():
            bvh = ctx.bvh(code)
            rays = ctx.rays(code, SWEEP_WORKLOAD)
            rays = rays.subset(np.arange(min(_ORACLE_RAYS, len(rays))))
            study = run_limit_study(bvh, rays, config)
            for kind, result in study.items():
                per_kind[kind]["verified"].append(result.verified_rate)
                per_kind[kind]["savings"].append(result.memory_savings)
        return {
            kind: (
                float(np.mean(vals["verified"])),
                float(np.mean(vals["savings"])),
            )
            for kind, vals in per_kind.items()
        }

    averages = benchmark.pedantic(run, rounds=1, iterations=1)
    labels = {
        OracleKind.PROPOSED: "Proposed Predictor",
        OracleKind.ORACLE_LOOKUP: "Oracle Lookup (5.5KB)",
        OracleKind.ORACLE_TRAINING: "Oracle Training (inf)",
        OracleKind.ORACLE_UPDATES: "Oracle Updates",
    }
    rows = [
        [labels[kind], averages[kind][0], averages[kind][1]] for kind in OracleKind
    ]
    report(
        "fig02_limit_study",
        format_table(
            ["Configuration", "Verified rays", "Memory savings"],
            rows,
            title="Figure 2 (scaled): limit study, averaged over seven scenes",
        ),
    )

    proposed_v, proposed_s = averages[OracleKind.PROPOSED]
    ol_v, ol_s = averages[OracleKind.ORACLE_LOOKUP]
    ot_v, ot_s = averages[OracleKind.ORACLE_TRAINING]
    ou_v, ou_s = averages[OracleKind.ORACLE_UPDATES]
    # The paper's ordering must hold at any scale.
    assert proposed_v < ol_v <= ot_v + 1e-9
    assert ot_v <= ou_v + 1e-9
    assert ol_s > proposed_s
    assert ot_s >= ol_s - 1e-9
    # And the oracle headroom is substantial (paper: 13 % -> 24 % -> 58 %).
    assert ol_s > 1.5 * max(proposed_s, 0.01)
