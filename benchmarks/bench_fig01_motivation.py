"""Figure 1: motivation - access redundancy and cache-size sensitivity.

Paper (left): ~88 % of an AO workload's memory accesses are *repeated*
BVH-node accesses (a node some ray already fetched this frame).
Paper (right): without the predictor, the baseline keeps speeding up as
the L1 grows (1.6x at 16x capacity) - the working set dwarfs the cache,
so a cache alone is a poor substitute for prediction.

Expected scaled shape: repeated node accesses dominate (well over half
of all accesses); baseline speedup grows monotonically-ish with L1 size
and requires several times the default capacity to approach the
predictor's gain.
"""

from repro.analysis.experiments import (
    SWEEP_SCENES,
    SWEEP_WORKLOAD,
    all_scene_codes,
)
from repro.analysis.tables import format_table
from repro.gpu.config import CacheConfig, MemoryConfig
from repro.trace import TraversalStats, occlusion_any_hit


def test_fig01_left_access_distribution(benchmark, ctx, report):
    """Distribution of memory accesses into unique/repeated node/tri."""

    def run():
        rows = []
        for code in all_scene_codes():
            bvh = ctx.bvh(code)
            rays = ctx.rays(code, SWEEP_WORKLOAD)
            stats = TraversalStats()
            seen_nodes = set()
            seen_tris = set()
            repeated_nodes = unique_nodes = repeated_tris = unique_tris = 0
            for ray in rays:
                per_ray = TraversalStats()
                occlusion_any_hit(bvh, ray, stats=per_ray, record_trace=True)
                for kind, index in per_ray.trace:
                    if kind == "node":
                        if index in seen_nodes:
                            repeated_nodes += 1
                        else:
                            unique_nodes += 1
                            seen_nodes.add(index)
                    else:
                        if index in seen_tris:
                            repeated_tris += 1
                        else:
                            unique_tris += 1
                            seen_tris.add(index)
                stats.merge(per_ray)
            total = max(1, stats.total_accesses)
            rows.append(
                (
                    code,
                    repeated_nodes / total,
                    unique_nodes / total,
                    repeated_tris / total,
                    unique_tris / total,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    avg = [sum(r[i] for r in rows) / len(rows) for i in range(1, 5)]
    report(
        "fig01_left_distribution",
        format_table(
            ["Scene", "Repeated node", "Unique node", "Repeated tri", "Unique tri"],
            [list(r) for r in rows] + [["AVERAGE"] + avg],
            title="Figure 1 left (scaled): distribution of memory accesses",
        ),
    )
    # Paper: repeated BVH node accesses ~88 % - by far the largest class.
    assert avg[0] > 0.55
    assert avg[0] == max(avg)


def test_fig01_right_l1_sweep_without_predictor(benchmark, ctx, report):
    """Baseline speedup vs L1 size, relative to the default capacity."""

    sizes_kb = [2, 4, 8, 16, 32]

    def run():
        rows = []
        for code in SWEEP_SCENES:
            reference = ctx.baseline(
                code, SWEEP_WORKLOAD,
                memory=MemoryConfig(l1=CacheConfig(size_bytes=4 * 1024)),
            )
            row = [code]
            for kb in sizes_kb:
                out = ctx.baseline(
                    code, SWEEP_WORKLOAD,
                    memory=MemoryConfig(l1=CacheConfig(size_bytes=kb * 1024)),
                )
                row.append(reference.cycles / out.cycles)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig01_right_l1_sweep",
        format_table(
            ["Scene"] + [f"L1 {kb}KB" for kb in sizes_kb],
            rows,
            title="Figure 1 right (scaled): baseline speedup vs L1 size "
            "(relative to 4KB default)",
        ),
    )
    for row in rows:
        speeds = row[1:]
        # Growing the cache never hurts and the largest config wins.
        assert speeds[-1] >= speeds[0]
        assert abs(speeds[1] - 1.0) < 1e-9  # 4KB is the reference
