"""Table 8: hash-function parameter sweeps.

Paper (8a): Grid Spherical peaks at 5 origin bits / 3 direction bits
(25.8 %), degrading when the hash is too tight (5/5: 14 %) or too loose.
Paper (8b): Two Point peaks at mid-range length ratios and degrades at
large ratios with many origin bits (5 bits / 0.35: 6.8 %).

Expected scaled shape: both sweeps show an interior optimum (an
inverted-U): the extreme-tight corner is worse than the best cell.  At
our ray density the optimum sits at fewer origin bits than the paper's
5 (documented in EXPERIMENTS.md) - the tightness/density tradeoff of
Section 4.2 is the reproduced mechanism.
"""

from repro.analysis.experiments import (
    SWEEP_SCENES,
    SWEEP_WORKLOAD,
    scaled_predictor_config,
    sweep_config_metrics,
)
from repro.analysis.stats import geometric_mean
from repro.analysis.tables import format_table

ORIGIN_BITS = [3, 4, 5]
DIRECTION_BITS = [1, 3, 5]
LENGTH_RATIOS = [0.05, 0.15, 0.25, 0.35]


def _geo_speedups(ctx, configs):
    """Geomean sweep-scene speedup for each config key, sharded by
    ``REPRO_BENCH_JOBS`` through :func:`sweep_config_metrics`."""
    metrics = sweep_config_metrics(
        list(configs.values()), SWEEP_SCENES, SWEEP_WORKLOAD, ctx=ctx
    )
    return {
        key: geometric_mean(
            [metrics[(config, code)].speedup for code in SWEEP_SCENES]
        )
        for key, config in configs.items()
    }


def test_tab08a_grid_spherical(benchmark, ctx, report):
    def run():
        configs = {
            (ob, db): scaled_predictor_config(origin_bits=ob, direction_bits=db)
            for ob in ORIGIN_BITS
            for db in DIRECTION_BITS
        }
        return _geo_speedups(ctx, configs)

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[ob] + [grid[(ob, db)] for db in DIRECTION_BITS] for ob in ORIGIN_BITS]
    report(
        "tab08a_grid_spherical",
        format_table(
            ["Origin bits \\ Direction bits"] + [str(d) for d in DIRECTION_BITS],
            rows,
            title="Table 8a (scaled): Grid Spherical geomean speedup",
        ),
    )

    best = max(grid.values())
    worst = min(grid.values())
    # Paper shape: hash tightness matters a lot (the paper's grid spans
    # 14-25.8 %); at least one corner of the grid is clearly suboptimal.
    # Which corner is worst depends on ray density: the paper's 4M-ray
    # workloads collapse at (5,5); our scaled density collapses where
    # the direction hash is much tighter than the origin hash.
    assert worst < best - 0.05
    assert best > 1.0
    # The direction-bits axis shows the tightness tradeoff at every
    # origin width: the extreme direction hash never beats the moderate.
    for ob in ORIGIN_BITS:
        assert grid[(ob, 5)] <= max(grid[(ob, 1)], grid[(ob, 3)]) + 0.03


def test_tab08b_two_point(benchmark, ctx, report):
    def run():
        configs = {
            (ob, ratio): scaled_predictor_config(
                hash_function="two_point", origin_bits=ob, length_ratio=ratio
            )
            for ob in ORIGIN_BITS
            for ratio in LENGTH_RATIOS
        }
        return _geo_speedups(ctx, configs)

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[ob] + [grid[(ob, r)] for r in LENGTH_RATIOS] for ob in ORIGIN_BITS]
    report(
        "tab08b_two_point",
        format_table(
            ["Origin bits \\ Length ratio"] + [str(r) for r in LENGTH_RATIOS],
            rows,
            title="Table 8b (scaled): Two Point geomean speedup",
        ),
    )

    best = max(grid.values())
    worst = min(grid.values())
    # Paper shape: the length ratio and origin bits matter (the paper's
    # grid spans 6.8-24.7 %), and Two Point's best configuration is
    # comparable to Grid Spherical's ("Two Point gives comparable
    # results", Section 6.1.4).  As with 8a, *which* corner collapses
    # moves with ray density.
    assert worst < best - 0.05
    assert best > 1.10
