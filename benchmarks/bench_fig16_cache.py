"""Figure 16: cache configurations - hit rates and speedup.

Paper: L1 hit rate and performance improve with capacity but show
diminishing returns past 64 KB; to match the predictor's gain without a
predictor the L1 would need ~6x the capacity (384 KB).

Expected scaled shape: hit rates monotonically non-decreasing in L1
size; diminishing marginal speedup; the predictor at the default L1
beats the baseline at the default L1, and several-times-larger caches
are needed to catch it.
"""

from repro.analysis.experiments import (
    SWEEP_SCENES,
    SWEEP_WORKLOAD,
    scaled_predictor_config,
)
from repro.analysis.stats import geometric_mean
from repro.analysis.tables import format_table
from repro.gpu.config import CacheConfig, MemoryConfig

SIZES_KB = [1, 2, 4, 8, 16, 32, 64, 128, 256]


def test_fig16_cache_configurations(benchmark, ctx, report):
    predictor = scaled_predictor_config()

    def run():
        rows = []
        reference = {
            code: ctx.baseline(
                code, SWEEP_WORKLOAD,
                memory=MemoryConfig(l1=CacheConfig(size_bytes=4 * 1024)),
            )
            for code in SWEEP_SCENES
        }
        for kb in SIZES_KB:
            memory = MemoryConfig(
                l1=CacheConfig(size_bytes=kb * 1024, ways=8 if kb == 1 else 16)
            )
            hit_rates, speeds = [], []
            for code in SWEEP_SCENES:
                out = ctx.baseline(code, SWEEP_WORKLOAD, memory=memory)
                hit_rates.append(out.l1_hit_rate)
                speeds.append(reference[code].cycles / out.cycles)
            rows.append((f"{kb}KB", sum(hit_rates) / len(hit_rates),
                         geometric_mean(speeds)))
        pred_speed = geometric_mean(
            [
                reference[code].cycles
                / ctx.predicted(code, predictor, SWEEP_WORKLOAD).cycles
                for code in SWEEP_SCENES
            ]
        )
        return rows, pred_speed

    rows, pred_speed = benchmark.pedantic(run, rounds=1, iterations=1)
    table = [list(r) for r in rows] + [["predictor @4KB", "", pred_speed]]
    report(
        "fig16_cache",
        format_table(
            ["L1 size", "L1 hit rate", "Speedup vs 4KB baseline"],
            table,
            title="Figure 16 (scaled): cache configurations",
        ),
    )

    hit_rates = [r[1] for r in rows]
    speeds = [r[2] for r in rows]
    # Hit rate monotone in capacity.
    for a, b in zip(hit_rates, hit_rates[1:]):
        assert b >= a - 0.01
    # Diminishing returns once the working set fits: the final doubling
    # (128KB -> 256KB, everything resident) gains far less than the
    # biggest doubling on the way up.
    past_fit_gain = speeds[-1] - speeds[-2]
    biggest_gain = max(b - a for a, b in zip(speeds, speeds[1:]))
    assert past_fit_gain < 0.5 * biggest_gain
    # The predictor at the default L1 outruns the default-L1 baseline,
    # and only a several-times-larger cache closes the gap (Figure 1:
    # the paper needs ~6x the L1 to match the predictor).
    assert pred_speed > 1.05
    assert speeds[2] < pred_speed  # 4KB baseline == 1.0 by construction
    catch_up = next((kb for kb, s in zip(SIZES_KB, speeds) if s >= pred_speed), None)
    assert catch_up is None or catch_up >= 16
