"""Extension (paper Section 8, future work): dynamic scenes and
inter-frame predictor persistence.

The conclusion suggests preserving predictor state between frames and
retraining only for dynamic elements.  This benchmark simulates a
three-frame animation: geometry jitters slightly each frame and the BVH
is *refitted* (topology preserved, so stored node indices stay valid).
Three policies are compared:

* **cold**  - reset the table every frame (the paper's per-frame setup);
* **warm**  - keep the table across frames (rebind to the refitted tree);
* **frame 1** - the first frame, identical for both (the training cost).

Expected shape: the warm table predicts more rays than a cold table on
later frames, and verified rates survive small motion - the property
that makes the future-work direction credible.
"""

from repro.analysis.experiments import SWEEP_WORKLOAD, scaled_predictor_config
from repro.analysis.tables import format_table
from repro.bvh import jitter_mesh, refit_bvh
from repro.gpu import GPUConfig, simulate_workload
from repro.gpu.simulator import make_predictors
from repro.rays import generate_ao_workload

SCENE = "LR"
FRAMES = 3
MOTION = 0.01  # fraction of scene units moved per frame


def test_ext_interframe_persistence(benchmark, ctx, report):
    config = GPUConfig(predictor=scaled_predictor_config())

    def run():
        scene = ctx.scene(SCENE)
        base_bvh = ctx.bvh(SCENE)
        warm_pool = make_predictors(base_bvh, config)

        rows = []
        bvh = base_bvh
        for frame in range(FRAMES):
            if frame > 0:
                moved = jitter_mesh(bvh.mesh, MOTION, seed=100 + frame)
                bvh = refit_bvh(bvh, moved)
                for predictor in warm_pool:
                    predictor.rebind(bvh)
            workload = generate_ao_workload(
                scene, bvh,
                width=SWEEP_WORKLOAD.width, height=SWEEP_WORKLOAD.height,
                spp=SWEEP_WORKLOAD.spp, seed=SWEEP_WORKLOAD.seed + frame,
            )
            warm = simulate_workload(bvh, workload.rays, config, predictors=warm_pool)
            cold = simulate_workload(bvh, workload.rays, config)
            rows.append(
                (
                    frame,
                    cold.predicted_rate,
                    cold.verified_rate,
                    warm.predicted_rate,
                    warm.verified_rate,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ext_dynamic_interframe",
        format_table(
            ["Frame", "Cold predicted", "Cold verified",
             "Warm predicted", "Warm verified"],
            [list(r) for r in rows],
            title="Extension: inter-frame persistence on a refitted "
            "dynamic scene",
        ),
    )

    # Later frames: the warm table predicts at least as much as cold.
    for frame, cold_p, cold_v, warm_p, warm_v in rows[1:]:
        assert warm_p >= cold_p - 0.02, rows
    # And persistence actually helps somewhere.
    assert any(r[3] > r[1] + 0.02 for r in rows[1:]), rows
