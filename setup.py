"""Setup shim.

Metadata lives in pyproject.toml; this file exists so that editable
installs work on environments without the `wheel` package (offline
machines), via ``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
